"""Experiment harness: one function per table / figure of the paper.

Every experiment of the evaluation section is reproduced by a function in
this module.  Each function takes an :class:`ExperimentContext` (which owns
the workload suites, the trace length and a trace cache so that every machine
configuration sees identical instruction streams) and returns a plain result
object that the benchmark scripts print in the same rows/series the paper
reports.

Every experiment is expressed in two halves:

* a ``*_sweep`` builder that **declares the sweep as data** -- a list of
  :class:`~repro.exp.runner.SweepCase` records naming which machine runs
  over which suite -- and
* the experiment function itself, which hands the declared cases to
  :meth:`ExperimentContext.run_sweep` and post-processes the resulting
  aggregates into the figure's series.

Because the simulation work is fully described by the case list, the
orchestration layer (:mod:`repro.exp`) can deduplicate, cache and fan the
whole figure out over a process pool; with no runner attached the context
falls back to the in-process serial path, and both paths produce
bit-identical numbers.

| Function                          | Paper artifact |
| --------------------------------- | -------------- |
| :func:`fig1_execution_locality`   | Figure 1       |
| :func:`sec52_epoch_sizing`        | Section 5.2    |
| :func:`fig7_speedups`             | Figure 7       |
| :func:`fig8a_filter_accuracy`     | Figure 8 (a)   |
| :func:`fig8bc_cache_sensitivity`  | Figure 8 (b,c) |
| :func:`fig9_restricted_models`    | Figure 9       |
| :func:`fig10_svw_reexecution`     | Figure 10      |
| :func:`fig11_high_locality_mode`  | Figure 11      |
| :func:`table2_access_counts`      | Table 2        |
| :func:`sec6_energy_comparison`    | Section 6      |
| :func:`family_sweep`              | (beyond-paper) |
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.config import DisambiguationModel
from repro.energy.accounting import EnergyModel
from repro.exp.runner import ExperimentRunner, SweepCase, ensure_unique_case_ids
from repro.isa.trace import Trace
from repro.sim.configs import (
    MachineConfig,
    fmc_central,
    fmc_elsq,
    fmc_hash,
    fmc_hash_rsac,
    fmc_hash_svw,
    fmc_line,
    ooo_64,
    ooo_64_svw,
)
from repro.sim.simulator import DEFAULT_INSTRUCTIONS_PER_WORKLOAD, Simulator, SuiteResult
from repro.workloads.suite import WorkloadSuite, spec_fp_suite, spec_int_suite


@dataclass
class ExperimentContext:
    """Shared state of one experiment campaign.

    The context pins the two suites, the trace length and the RNG seed, and
    caches generated traces so that every machine configuration within an
    experiment (and across experiments in the same campaign) replays exactly
    the same instruction streams.  Attaching an
    :class:`~repro.exp.runner.ExperimentRunner` routes every simulation
    through the orchestration layer (result cache, process pool); without
    one the context runs serially in-process.
    """

    fp_suite: WorkloadSuite = field(default_factory=spec_fp_suite)
    int_suite: WorkloadSuite = field(default_factory=spec_int_suite)
    instructions_per_workload: int = DEFAULT_INSTRUCTIONS_PER_WORKLOAD
    seed: Optional[int] = None
    runner: Optional[ExperimentRunner] = None
    #: Simulation engine override applied to every machine the campaign runs
    #: (``None`` keeps each machine's own choice -- the fast engine unless a
    #: configuration says otherwise).
    engine: Optional[str] = None
    #: Replacement-policy override applied to both cache levels of every
    #: machine the campaign runs (``None`` keeps each machine's own
    #: configuration, LRU unless a hierarchy says otherwise).
    policy: Optional[str] = None
    _trace_cache: Dict[str, List[Trace]] = field(default_factory=dict)

    def _apply_engine(self, machine: MachineConfig) -> MachineConfig:
        """Rebind ``machine`` to the campaign's engine override, if any."""
        if self.engine is None or machine.engine == self.engine:
            return machine
        return machine.with_engine(self.engine)

    def _apply_policy(self, machine: MachineConfig) -> MachineConfig:
        """Rebind ``machine`` to the campaign's replacement-policy override."""
        if self.policy is None or (
            machine.hierarchy.l1.replacement_policy == self.policy
            and machine.hierarchy.l2.replacement_policy == self.policy
        ):
            return machine
        return machine.with_policy(self.policy)

    def _apply_overrides(self, machine: MachineConfig) -> MachineConfig:
        return self._apply_policy(self._apply_engine(machine))

    def suites(self) -> Dict[str, WorkloadSuite]:
        """The two suites keyed by their paper labels."""
        return {"SPEC FP": self.fp_suite, "SPEC INT": self.int_suite}

    def traces_for(self, suite: WorkloadSuite) -> List[Trace]:
        """Return (and cache) the traces of a suite at the campaign's length."""
        key = f"{suite.name}:{self.instructions_per_workload}:{self.seed}"
        if key not in self._trace_cache:
            self._trace_cache[key] = suite.generate_traces(
                self.instructions_per_workload, seed=self.seed
            )
        return self._trace_cache[key]

    def run(self, machine: MachineConfig, suite: WorkloadSuite) -> SuiteResult:
        """Run one machine over one suite (through the runner when attached)."""
        machine = self._apply_overrides(machine)
        if self.runner is not None:
            return self.runner.run_suite(
                machine, suite, self.instructions_per_workload, seed=self.seed
            )
        simulator = Simulator(machine)
        return simulator.run_suite(
            suite,
            num_instructions=self.instructions_per_workload,
            seed=self.seed,
            traces=self.traces_for(suite),
        )

    def run_sweep(
        self,
        cases: Sequence[SweepCase],
        extra_suites: Optional[Dict[str, WorkloadSuite]] = None,
    ) -> Dict[str, SuiteResult]:
        """Run a declared sweep and return ``{case_id: SuiteResult}``.

        With a runner attached the whole sweep is executed as one batch
        (deduplicated, cached, parallel); otherwise the cases run serially
        through :meth:`run`, reusing the context's trace cache.

        ``extra_suites`` lets an experiment sweep over suites beyond the
        campaign's two SPEC-like ones (the workload families do this) without
        mutating the context -- the merge is per-call, so a later experiment
        sharing this context still sees only the campaign suites.
        """
        ensure_unique_case_ids(cases)
        suites = dict(self.suites())
        if extra_suites:
            suites.update(extra_suites)
        if self.engine is not None or self.policy is not None:
            cases = [
                dataclasses.replace(case, machine=self._apply_overrides(case.machine))
                for case in cases
            ]
        if self.runner is not None:
            return self.runner.run_cases(
                cases, suites, self.instructions_per_workload, seed=self.seed
            )
        return {case.case_id: self.run(case.machine, suites[case.suite_label]) for case in cases}


def quick_context(instructions: int = 6_000, seed: int = 7) -> ExperimentContext:
    """A reduced campaign (two workloads per suite, short traces) for tests."""
    from repro.workloads.suite import quick_fp_suite, quick_int_suite

    return ExperimentContext(
        fp_suite=quick_fp_suite(),
        int_suite=quick_int_suite(),
        instructions_per_workload=instructions,
        seed=seed,
    )


# ----------------------------------------------------------------------
# Figure 1: execution locality of address calculations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class LocalityDistribution:
    """Decode→address-calculation latency distribution for one suite."""

    suite_label: str
    load_series: List[Tuple[int, int]]
    store_series: List[Tuple[int, int]]
    load_fraction_within_bin: float
    store_fraction_within_bin: float
    load_p95: int
    load_p99: int
    store_p95: int
    store_p99: int


def fig1_sweep(context: ExperimentContext) -> List[SweepCase]:
    """Figure 1's sweep: the large-window FMC machine over both suites."""
    machine = fmc_hash()
    return [
        SweepCase(case_id=label, machine=machine, suite_label=label)
        for label in context.suites()
    ]


def fig1_execution_locality(context: ExperimentContext) -> Dict[str, LocalityDistribution]:
    """Reproduce Figure 1 on the large-window FMC machine."""
    sweep_results = context.run_sweep(fig1_sweep(context))
    output: Dict[str, LocalityDistribution] = {}
    for label in context.suites():
        suite_result = sweep_results[label]
        merged_loads: Dict[int, int] = {}
        merged_stores: Dict[int, int] = {}
        load_within = store_within = 0
        p95_load = p99_load = p95_store = p99_store = 0
        for result in suite_result.results.values():
            load_hist = result.histogram("decode_to_address.loads") or []
            store_hist = result.histogram("decode_to_address.stores") or []
            for lower, population in load_hist:
                merged_loads[lower] = merged_loads.get(lower, 0) + population
            for lower, population in store_hist:
                merged_stores[lower] = merged_stores.get(lower, 0) + population
        load_series = sorted(merged_loads.items())
        store_series = sorted(merged_stores.items())
        load_total = sum(population for _, population in load_series)
        store_total = sum(population for _, population in store_series)
        if load_series and load_total:
            load_within = load_series[0][1]
            p95_load = _percentile_bound(load_series, 0.95)
            p99_load = _percentile_bound(load_series, 0.99)
        if store_series and store_total:
            store_within = store_series[0][1]
            p95_store = _percentile_bound(store_series, 0.95)
            p99_store = _percentile_bound(store_series, 0.99)
        output[label] = LocalityDistribution(
            suite_label=label,
            load_series=load_series,
            store_series=store_series,
            load_fraction_within_bin=(load_within / load_total) if load_total else 0.0,
            store_fraction_within_bin=(store_within / store_total) if store_total else 0.0,
            load_p95=p95_load,
            load_p99=p99_load,
            store_p95=p95_store,
            store_p99=p99_store,
        )
    return output


def _percentile_bound(series: Sequence[Tuple[int, int]], percentile: float) -> int:
    total = sum(population for _, population in series)
    if total == 0:
        return 0
    target = percentile * total
    running = 0
    bin_width = series[1][0] - series[0][0] if len(series) > 1 else 30
    for lower, population in series:
        running += population
        if running >= target:
            return lower + bin_width
    return series[-1][0] + bin_width


# ----------------------------------------------------------------------
# Section 5.2: epoch / per-epoch LSQ sizing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EpochSizingPoint:
    """IPC of one per-epoch load/store-queue sizing."""

    load_entries: int
    store_entries: int
    mean_ipc: float
    slowdown_vs_unlimited: float


#: The per-epoch sizings of Section 5.2; the last entry is the "unlimited"
#: reference the slowdowns are measured against.
SEC52_DEFAULT_SIZINGS: Tuple[Tuple[int, int], ...] = (
    (16, 8),
    (32, 16),
    (64, 32),
    (128, 64),
    (1024, 1024),
)


def sec52_sweep(
    sizings: Sequence[Tuple[int, int]] = SEC52_DEFAULT_SIZINGS,
) -> List[SweepCase]:
    """Section 5.2's sweep: one per-epoch sizing per case, SPEC-FP-like suite."""
    return [
        SweepCase(
            case_id=f"{loads}L{stores}S",
            machine=fmc_elsq(
                epoch_load_entries=loads,
                epoch_store_entries=stores,
                name=f"FMC-Hash-{loads}L{stores}S",
            ),
            suite_label="SPEC FP",
        )
        for loads, stores in sizings
    ]


def sec52_epoch_sizing(
    context: ExperimentContext,
    sizings: Sequence[Tuple[int, int]] = SEC52_DEFAULT_SIZINGS,
) -> List[EpochSizingPoint]:
    """Reproduce the Section 5.2 sizing study on the SPEC-FP-like suite.

    The last sizing in ``sizings`` is treated as the "unlimited" reference
    (the paper sizes against an unlimited LSQ and accepts ~1% slowdown for
    64 loads / 32 stores per epoch).
    """
    sweep_results = context.run_sweep(sec52_sweep(sizings))
    results: List[Tuple[Tuple[int, int], float]] = [
        ((loads, stores), sweep_results[f"{loads}L{stores}S"].mean_ipc)
        for loads, stores in sizings
    ]
    reference_ipc = results[-1][1]
    return [
        EpochSizingPoint(
            load_entries=loads,
            store_entries=stores,
            mean_ipc=ipc,
            slowdown_vs_unlimited=1.0 - (ipc / reference_ipc if reference_ipc else 0.0),
        )
        for (loads, stores), ipc in results
    ]


# ----------------------------------------------------------------------
# Figure 7: speed-up of the large-window LSQ schemes
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SpeedupRow:
    """Speed-up of one machine over the OoO-64 baseline, per suite."""

    machine_name: str
    speedup_by_suite: Dict[str, float]
    ipc_by_suite: Dict[str, float]


def fig7_machines() -> List[MachineConfig]:
    """The five large-window LSQ schemes Figure 7 compares."""
    return [
        fmc_central("Central LSQ"),
        fmc_line(store_queue_mirror=False, name="ELSQ Line ERT"),
        fmc_line(store_queue_mirror=True, name="ELSQ Line ERT + SQM"),
        fmc_hash(store_queue_mirror=False, name="ELSQ Hash ERT"),
        fmc_hash(store_queue_mirror=True, name="ELSQ Hash ERT + SQM"),
    ]


def fig7_sweep(context: ExperimentContext) -> List[SweepCase]:
    """Figure 7's sweep: the baseline and every LSQ scheme over both suites."""
    machines = [ooo_64()] + fig7_machines()
    return [
        SweepCase(case_id=f"{machine.name}|{label}", machine=machine, suite_label=label)
        for machine in machines
        for label in context.suites()
    ]


def fig7_speedups(context: ExperimentContext) -> Tuple[List[SpeedupRow], Dict[str, float]]:
    """Reproduce Figure 7: return (rows, baseline IPC per suite)."""
    sweep_results = context.run_sweep(fig7_sweep(context))
    baseline_name = ooo_64().name
    baseline_results = {
        label: sweep_results[f"{baseline_name}|{label}"] for label in context.suites()
    }
    baseline_ipc = {label: result.mean_ipc for label, result in baseline_results.items()}
    rows: List[SpeedupRow] = []
    for machine in fig7_machines():
        speedups: Dict[str, float] = {}
        ipcs: Dict[str, float] = {}
        for label in context.suites():
            result = sweep_results[f"{machine.name}|{label}"]
            speedups[label] = result.speedup_over(baseline_results[label])
            ipcs[label] = result.mean_ipc
        rows.append(
            SpeedupRow(machine_name=machine.name, speedup_by_suite=speedups, ipc_by_suite=ipcs)
        )
    return rows, baseline_ipc


# ----------------------------------------------------------------------
# Figure 8a: ERT filter accuracy
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FilterAccuracyPoint:
    """False-positive rate of one ERT configuration."""

    label: str
    storage_bytes: int
    false_positives_per_100m: Dict[str, float]


#: The hash-based ERT index widths swept by Figure 8a.
FIG8A_DEFAULT_HASH_BITS: Tuple[int, ...] = (6, 8, 10, 11, 12, 14, 16)


def fig8a_sweep(
    context: ExperimentContext, hash_bits: Sequence[int] = FIG8A_DEFAULT_HASH_BITS
) -> List[SweepCase]:
    """Figure 8a's sweep: the line-based ERT plus every hash width, both suites."""
    machines = [fmc_line()] + [
        fmc_hash(hash_bits=bits, name=f"FMC-Hash-{bits}b") for bits in hash_bits
    ]
    return [
        SweepCase(case_id=f"{machine.name}|{label}", machine=machine, suite_label=label)
        for machine in machines
        for label in context.suites()
    ]


def fig8a_filter_accuracy(
    context: ExperimentContext, hash_bits: Sequence[int] = FIG8A_DEFAULT_HASH_BITS
) -> List[FilterAccuracyPoint]:
    """Reproduce Figure 8a: ERT false positives versus filter size."""
    sweep_results = context.run_sweep(fig8a_sweep(context, hash_bits))
    points: List[FilterAccuracyPoint] = []
    line_machine = fmc_line()
    line_fp = {
        label: sweep_results[f"{line_machine.name}|{label}"].mean_counter_per_100m(
            "ert.false_positives"
        )
        for label in context.suites()
    }
    points.append(
        FilterAccuracyPoint(
            label="Line-based",
            # Load table + store table (the config method sizes one table).
            storage_bytes=2 * line_machine.elsq.ert.storage_bytes(line_machine.hierarchy.l1),
            false_positives_per_100m=line_fp,
        )
    )
    for bits in hash_bits:
        machine = fmc_hash(hash_bits=bits, name=f"FMC-Hash-{bits}b")
        false_positives = {
            label: sweep_results[f"{machine.name}|{label}"].mean_counter_per_100m(
                "ert.false_positives"
            )
            for label in context.suites()
        }
        points.append(
            FilterAccuracyPoint(
                label=f"{bits} bits",
                storage_bytes=2 * machine.elsq.ert.storage_bytes(),
                false_positives_per_100m=false_positives,
            )
        )
    return points


# ----------------------------------------------------------------------
# Figure 8b/c: sensitivity to the L1 geometry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CacheSensitivityPoint:
    """Relative performance of one (L1 size, associativity, ERT kind) point."""

    suite_label: str
    ert_label: str
    l1_kb: int
    associativity: int
    relative_performance: float


def fig8bc_sweep(
    context: ExperimentContext,
    l1_sizes_kb: Sequence[int] = (32, 64),
    associativities: Sequence[int] = (1, 2, 4, 8),
) -> List[SweepCase]:
    """Figure 8b/c's sweep: line vs hash ERT under every L1 geometry, both suites."""
    cases: List[SweepCase] = []
    for suite_label in context.suites():
        for size_kb in l1_sizes_kb:
            for associativity in associativities:
                hierarchy = context_hierarchy(size_kb, associativity)
                hash_bits = 10 if size_kb == 32 else 11
                for ert_label, base in (
                    ("CacheLine-based ERT", fmc_line()),
                    ("Hash-based ERT", fmc_hash(hash_bits=hash_bits)),
                ):
                    machine = base.with_hierarchy(
                        hierarchy, name=f"{base.name}-{size_kb}KB-{associativity}w"
                    )
                    cases.append(
                        SweepCase(
                            case_id=f"{suite_label}|{ert_label}|{size_kb}KB|{associativity}w",
                            machine=machine,
                            suite_label=suite_label,
                        )
                    )
    return cases


def fig8bc_cache_sensitivity(
    context: ExperimentContext,
    l1_sizes_kb: Sequence[int] = (32, 64),
    associativities: Sequence[int] = (1, 2, 4, 8),
) -> List[CacheSensitivityPoint]:
    """Reproduce Figure 8b/c: line- vs hash-based ERT under varying L1 geometry."""
    sweep_results = context.run_sweep(fig8bc_sweep(context, l1_sizes_kb, associativities))
    raw: List[Tuple[str, str, int, int, float]] = []
    for suite_label in context.suites():
        for size_kb in l1_sizes_kb:
            for associativity in associativities:
                for ert_label in ("CacheLine-based ERT", "Hash-based ERT"):
                    case_id = f"{suite_label}|{ert_label}|{size_kb}KB|{associativity}w"
                    ipc = sweep_results[case_id].mean_ipc
                    raw.append(
                        (suite_label, f"{ert_label} / {size_kb}KB", size_kb, associativity, ipc)
                    )
    points: List[CacheSensitivityPoint] = []
    for suite_label in context.suites():
        suite_rows = [row for row in raw if row[0] == suite_label]
        best = max(row[4] for row in suite_rows)
        for _, ert_label, size_kb, associativity, ipc in suite_rows:
            points.append(
                CacheSensitivityPoint(
                    suite_label=suite_label,
                    ert_label=ert_label,
                    l1_kb=size_kb,
                    associativity=associativity,
                    relative_performance=ipc / best if best else 0.0,
                )
            )
    return points


def context_hierarchy(l1_size_kb: int, associativity: int):
    """Build a memory hierarchy with the requested L1 geometry."""
    from repro.common.config import MemoryHierarchyConfig

    return MemoryHierarchyConfig().with_l1(l1_size_kb * 1024, associativity)


# ----------------------------------------------------------------------
# Figure 9: restricted disambiguation models
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class RestrictedModelPoint:
    """Performance of one disambiguation model relative to full disambiguation."""

    model: DisambiguationModel
    relative_by_suite: Dict[str, float]


#: The disambiguation models of Figure 9, full disambiguation first.
FIG9_MODELS: Tuple[DisambiguationModel, ...] = (
    DisambiguationModel.FULL,
    DisambiguationModel.RESTRICTED_SAC,
    DisambiguationModel.RESTRICTED_LAC,
    DisambiguationModel.RESTRICTED_SAC_LAC,
)


def fig9_sweep(context: ExperimentContext) -> List[SweepCase]:
    """Figure 9's sweep: one machine per disambiguation model, both suites."""
    return [
        SweepCase(
            case_id=f"{model.value}|{label}",
            machine=fmc_elsq(disambiguation=model, name=f"FMC-Hash-{model.value}"),
            suite_label=label,
        )
        for model in FIG9_MODELS
        for label in context.suites()
    ]


def fig9_restricted_models(context: ExperimentContext) -> List[RestrictedModelPoint]:
    """Reproduce Figure 9: Full / RSAC / RLAC / RSAC+LAC relative performance."""
    sweep_results = context.run_sweep(fig9_sweep(context))
    per_model_ipc: Dict[DisambiguationModel, Dict[str, float]] = {
        model: {
            label: sweep_results[f"{model.value}|{label}"].mean_ipc
            for label in context.suites()
        }
        for model in FIG9_MODELS
    }
    reference = per_model_ipc[DisambiguationModel.FULL]
    return [
        RestrictedModelPoint(
            model=model,
            relative_by_suite={
                label: (ipc / reference[label] if reference[label] else 0.0)
                for label, ipc in per_model_ipc[model].items()
            },
        )
        for model in FIG9_MODELS
    ]


# ----------------------------------------------------------------------
# Figure 10: SVW re-execution
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SVWPoint:
    """One bar/point of Figure 10."""

    machine_label: str
    suite_label: str
    variant: str
    ssbf_bits: int
    relative_ipc: float
    reexecutions_per_100m: float


#: The two host machines Figure 10 studies, with their SVW variant builders.
_FIG10_HOSTS = (
    ("OoO-64", ooo_64, ooo_64_svw),
    ("FMC", fmc_hash, fmc_hash_svw),
)

#: The two SVW policies of Figure 10.
_FIG10_VARIANTS = (("CheckStores", True), ("Blind", False))


def fig10_sweep(
    context: ExperimentContext, ssbf_bits: Sequence[int] = (12, 10, 8)
) -> List[SweepCase]:
    """Figure 10's sweep: per host, the baseline plus every (SSBF size, policy)."""
    cases: List[SweepCase] = []
    for machine_label, baseline_factory, svw_factory in _FIG10_HOSTS:
        baseline = baseline_factory()
        for label in context.suites():
            cases.append(
                SweepCase(
                    case_id=f"{machine_label}|baseline|{label}",
                    machine=baseline,
                    suite_label=label,
                )
            )
        for bits in ssbf_bits:
            for variant, check_stores in _FIG10_VARIANTS:
                machine = svw_factory(bits, check_stores)
                for label in context.suites():
                    cases.append(
                        SweepCase(
                            case_id=f"{machine_label}|{bits}b|{variant}|{label}",
                            machine=machine,
                            suite_label=label,
                        )
                    )
    return cases


def fig10_svw_reexecution(
    context: ExperimentContext, ssbf_bits: Sequence[int] = (12, 10, 8)
) -> List[SVWPoint]:
    """Reproduce Figure 10 on both the OoO-64 core and the FMC."""
    sweep_results = context.run_sweep(fig10_sweep(context, ssbf_bits))
    points: List[SVWPoint] = []
    for machine_label, _baseline_factory, _svw_factory in _FIG10_HOSTS:
        baseline_results = {
            label: sweep_results[f"{machine_label}|baseline|{label}"]
            for label in context.suites()
        }
        for bits in ssbf_bits:
            for variant, _check_stores in _FIG10_VARIANTS:
                for suite_label in context.suites():
                    result = sweep_results[f"{machine_label}|{bits}b|{variant}|{suite_label}"]
                    points.append(
                        SVWPoint(
                            machine_label=machine_label,
                            suite_label=suite_label,
                            variant=variant,
                            ssbf_bits=bits,
                            relative_ipc=result.speedup_over(baseline_results[suite_label]),
                            reexecutions_per_100m=result.mean_counter_per_100m(
                                "svw.reexecutions"
                            ),
                        )
                    )
    return points


# ----------------------------------------------------------------------
# Figure 11: high-locality mode residency versus L2 size
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HighLocalityPoint:
    """Fraction of cycles with an inactive LL-LSQ for one L2 capacity."""

    l2_mb: int
    inactivity_by_suite: Dict[str, float]


def fig11_sweep(
    context: ExperimentContext, l2_sizes_mb: Sequence[int] = (1, 2, 4, 8)
) -> List[SweepCase]:
    """Figure 11's sweep: the FMC under every L2 capacity, both suites."""
    from repro.common.config import MemoryHierarchyConfig

    cases: List[SweepCase] = []
    for l2_mb in l2_sizes_mb:
        hierarchy = MemoryHierarchyConfig().with_l2_size(l2_mb * 1024 * 1024)
        machine = fmc_hash().with_hierarchy(hierarchy, name=f"FMC-Hash-{l2_mb}MB")
        for label in context.suites():
            cases.append(
                SweepCase(case_id=f"{l2_mb}MB|{label}", machine=machine, suite_label=label)
            )
    return cases


def fig11_high_locality_mode(
    context: ExperimentContext, l2_sizes_mb: Sequence[int] = (1, 2, 4, 8)
) -> List[HighLocalityPoint]:
    """Reproduce Figure 11: LL-LSQ inactivity as a function of L2 capacity."""
    sweep_results = context.run_sweep(fig11_sweep(context, l2_sizes_mb))
    points: List[HighLocalityPoint] = []
    for l2_mb in l2_sizes_mb:
        inactivity: Dict[str, float] = {}
        for label in context.suites():
            fraction = sweep_results[f"{l2_mb}MB|{label}"].mean_high_locality_fraction()
            inactivity[label] = fraction if fraction is not None else 0.0
        points.append(HighLocalityPoint(l2_mb=l2_mb, inactivity_by_suite=inactivity))
    return points


# ----------------------------------------------------------------------
# Table 2: structure access counts
# ----------------------------------------------------------------------

#: The Table 2 columns and the counters that feed them.
TABLE2_COLUMNS: Dict[str, str] = {
    "HL-LQ": "hl_lq.searches",
    "HL-SQ": "hl_sq.searches",
    "LL-LQ": "ll_lq.searches",
    "LL-SQ": "ll_sq.searches",
    "ERT": "ert.lookups",
    "SSBF": "ssbf.lookups",
    "RoundTrips": "network.round_trips",
    "Cache": "cache.accesses",
}


@dataclass(frozen=True)
class Table2Row:
    """One configuration row of Table 2 for one suite."""

    config_name: str
    suite_label: str
    accesses_millions: Dict[str, float]
    speedup: float


def table2_machines() -> List[MachineConfig]:
    """The six configurations of Table 2, the OoO-64 baseline first."""
    return [
        ooo_64(),
        ooo_64_svw(10, check_stores=False, name="OoO-64-SVW"),
        fmc_line(name="FMC-Line"),
        fmc_hash(name="FMC-Hash"),
        fmc_hash_svw(10, check_stores=False, name="FMC-Hash-SVW"),
        fmc_hash_rsac(name="FMC-Hash-RSAC"),
    ]


def table2_sweep(context: ExperimentContext) -> List[SweepCase]:
    """Table 2's sweep: every named configuration over both suites."""
    return [
        SweepCase(case_id=f"{machine.name}|{label}", machine=machine, suite_label=label)
        for machine in table2_machines()
        for label in context.suites()
    ]


def table2_access_counts(context: ExperimentContext) -> List[Table2Row]:
    """Reproduce Table 2 (access counts in millions per 100M instructions)."""
    sweep_results = context.run_sweep(table2_sweep(context))
    configurations = table2_machines()
    baseline = configurations[0]
    rows: List[Table2Row] = []
    for suite_label in context.suites():
        baseline_result = sweep_results[f"{baseline.name}|{suite_label}"]
        for machine in configurations:
            result = sweep_results[f"{machine.name}|{suite_label}"]
            accesses = {
                column: result.mean_counter_per_100m_millions(counter)
                for column, counter in TABLE2_COLUMNS.items()
            }
            rows.append(
                Table2Row(
                    config_name=machine.name,
                    suite_label=suite_label,
                    accesses_millions=accesses,
                    speedup=result.speedup_over(baseline_result),
                )
            )
    return rows


# ----------------------------------------------------------------------
# Section 6: energy comparison
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class EnergyComparison:
    """Headline energy ratios discussed in Section 6."""

    ert_vs_l1_read_ratio: float
    rsac_vs_svw_ert_accesses: Dict[str, float]
    rsac_vs_svw_round_trips: Dict[str, float]
    rsac_vs_svw_cache_accesses: Dict[str, float]


def sec6_sweep(context: ExperimentContext) -> List[SweepCase]:
    """Section 6's sweep: the RSAC and SVW machines over both suites."""
    return [
        SweepCase(case_id=f"{kind}|{label}", machine=machine, suite_label=label)
        for kind, machine in (("rsac", fmc_hash_rsac()), ("svw", fmc_hash_svw(10, check_stores=False)))
        for label in context.suites()
    ]


def sec6_energy_comparison(context: ExperimentContext) -> EnergyComparison:
    """Reproduce the Section 6 energy discussion (ERT vs L1, RSAC vs SVW)."""
    sweep_results = context.run_sweep(sec6_sweep(context))
    model = EnergyModel()
    ert_ratio = model.ert_vs_cache_read_ratio()
    ert_accesses: Dict[str, float] = {}
    round_trips: Dict[str, float] = {}
    cache_accesses: Dict[str, float] = {}
    for label in context.suites():
        rsac_result = sweep_results[f"rsac|{label}"]
        svw_result = sweep_results[f"svw|{label}"]

        def _ratio(counter: str) -> float:
            denominator = svw_result.mean_counter_per_100m(counter)
            if denominator == 0:
                return 0.0
            return rsac_result.mean_counter_per_100m(counter) / denominator

        ert_accesses[label] = _ratio("ert.lookups")
        round_trips[label] = _ratio("network.round_trips")
        cache_accesses[label] = _ratio("cache.accesses")
    return EnergyComparison(
        ert_vs_l1_read_ratio=ert_ratio,
        rsac_vs_svw_ert_accesses=ert_accesses,
        rsac_vs_svw_round_trips=round_trips,
        rsac_vs_svw_cache_accesses=cache_accesses,
    )


# ----------------------------------------------------------------------
# Family sweeps: sensitivity of the new workload families to the FMC knobs
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class FamilySweepPoint:
    """IPC and epoch-pool pressure of one (family, knob, value) point."""

    family: str
    #: Which knob this point varies: ``"epochs"`` or ``"locality_threshold"``.
    knob: str
    value: int
    mean_ipc: float
    #: Cycles lost waiting for a free memory engine (epoch-pool saturation),
    #: per 100M instructions.
    migration_stall_cycles_per_100m: float


#: Epoch counts swept per family (the paper's machine has 16 engines).
FAMILY_SWEEP_EPOCH_COUNTS: Tuple[int, ...] = (2, 4, 8, 16)

#: Locality thresholds (decode-to-address-ready cycles) swept per family;
#: 30 is the paper's operating point (L2-hit latency).
FAMILY_SWEEP_LOCALITY_THRESHOLDS: Tuple[int, ...] = (10, 30, 90)


def family_sweep_suites(
    families: Optional[Sequence[str]] = None,
) -> Dict[str, WorkloadSuite]:
    """The family suites a sweep runs over, keyed by suite label."""
    from repro.workloads.families import FAMILY_NAMES, family_suite

    names = tuple(families) if families is not None else FAMILY_NAMES
    return {name: family_suite(name) for name in names}


def _family_sweep_plan(
    families: Sequence[str],
    epoch_counts: Sequence[int],
    locality_thresholds: Sequence[int],
) -> List[Tuple[str, str, int, SweepCase]]:
    """The sweep as structured rows: ``(family, knob, value, case)``.

    The case_id embeds the same triple for display/cache purposes, but the
    experiment reads the structured values -- never parses the string back.
    """
    plan: List[Tuple[str, str, int, SweepCase]] = []
    for family in families:
        for epochs in epoch_counts:
            case = SweepCase(
                case_id=f"{family}|epochs={epochs}",
                machine=fmc_elsq(num_epochs=epochs, name=f"FMC-Hash-{epochs}E"),
                suite_label=family,
            )
            plan.append((family, "epochs", epochs, case))
        for threshold in locality_thresholds:
            case = SweepCase(
                case_id=f"{family}|locality_threshold={threshold}",
                machine=fmc_elsq(
                    locality_threshold_cycles=threshold,
                    name=f"FMC-Hash-T{threshold}",
                ),
                suite_label=family,
            )
            plan.append((family, "locality_threshold", threshold, case))
    return plan


def family_sweep_cases(
    families: Sequence[str],
    epoch_counts: Sequence[int] = FAMILY_SWEEP_EPOCH_COUNTS,
    locality_thresholds: Sequence[int] = FAMILY_SWEEP_LOCALITY_THRESHOLDS,
) -> List[SweepCase]:
    """Declare the sweep: per family, one FMC variant per knob value."""
    return [
        case
        for _family, _knob, _value, case in _family_sweep_plan(
            families, epoch_counts, locality_thresholds
        )
    ]


def family_sweep(
    context: ExperimentContext,
    families: Optional[Sequence[str]] = None,
    epoch_counts: Sequence[int] = FAMILY_SWEEP_EPOCH_COUNTS,
    locality_thresholds: Sequence[int] = FAMILY_SWEEP_LOCALITY_THRESHOLDS,
) -> List[FamilySweepPoint]:
    """Per-family IPC sensitivity to epoch count and locality threshold.

    Each workload family isolates one behaviour (dependent misses, streaming
    MLP, wrong-path churn, phase alternation), so the per-family curves show
    *which* behaviour each FMC knob trades against: pointer chasing barely
    uses the epoch pool while streaming saturates it; a low locality
    threshold migrates nearly everything, a high one starves the Memory
    Processor.
    """
    suites = family_sweep_suites(families)
    plan = _family_sweep_plan(tuple(suites), epoch_counts, locality_thresholds)
    sweep_results = context.run_sweep(
        [case for _, _, _, case in plan], extra_suites=suites
    )
    points: List[FamilySweepPoint] = []
    for family, knob, value, case in plan:
        result = sweep_results[case.case_id]
        points.append(
            FamilySweepPoint(
                family=family,
                knob=knob,
                value=value,
                mean_ipc=result.mean_ipc,
                migration_stall_cycles_per_100m=result.mean_counter_per_100m(
                    "fmc.migration_stall_cycles"
                ),
            )
        )
    return points


def policy_sweep_experiment(context: ExperimentContext) -> Dict[str, Any]:
    """Miss-ratio curves per replacement policy, per workload family.

    Thin registry adapter over :func:`repro.memory.mrc.policy_sweep` (the
    profiler lives next to the policies it measures).  Unlike the timing
    experiments this is an *offline replay* -- no machine models run, so
    the context's ``engine``/``policy`` overrides are irrelevant here: every
    registered policy, including the Belady OPT oracle, is profiled on
    every family trace at the campaign's length and seed.
    """
    from repro.memory.mrc import policy_sweep

    return policy_sweep(context)


# ----------------------------------------------------------------------
# The experiment registry: figures addressable by name
# ----------------------------------------------------------------------

#: Trace length of the default (quick) campaign; matches benchmarks/conftest.py.
QUICK_INSTRUCTIONS = 8_000

#: Seed of the default campaign (the paper's publication year).
DEFAULT_SEED = 2008


@dataclass(frozen=True)
class ExperimentSpec:
    """One paper artifact addressable by name (CLI subcommand, wire request)."""

    name: str
    description: str
    run: Callable[[ExperimentContext], Any]
    #: Suites the experiment actually sweeps.  ``None`` means the campaign's
    #: two SPEC-like suites; experiments with a fixed scope of their own (the
    #: family sweep) name it here so JSON artifacts attribute the numbers to
    #: the right workloads.
    suites: Optional[Tuple[str, ...]] = None


#: Every reproducible artifact, keyed by the name the CLI and the service use.
EXPERIMENTS: Dict[str, ExperimentSpec] = {
    spec.name: spec
    for spec in (
        ExperimentSpec(
            "fig1",
            "Figure 1: execution locality of address calculations",
            fig1_execution_locality,
        ),
        ExperimentSpec("sec52", "Section 5.2: per-epoch LSQ sizing", sec52_epoch_sizing),
        ExperimentSpec(
            "fig7", "Figure 7: speed-up of the large-window LSQ schemes", fig7_speedups
        ),
        ExperimentSpec(
            "fig8a", "Figure 8a: ERT filter accuracy vs storage", fig8a_filter_accuracy
        ),
        ExperimentSpec(
            "fig8bc", "Figure 8b/c: sensitivity to the L1 geometry", fig8bc_cache_sensitivity
        ),
        ExperimentSpec(
            "fig9", "Figure 9: restricted disambiguation models", fig9_restricted_models
        ),
        ExperimentSpec("fig10", "Figure 10: SVW re-execution", fig10_svw_reexecution),
        ExperimentSpec(
            "fig11", "Figure 11: high-locality mode vs L2 size", fig11_high_locality_mode
        ),
        ExperimentSpec("table2", "Table 2: structure access counts", table2_access_counts),
        ExperimentSpec("sec6", "Section 6: energy comparison", sec6_energy_comparison),
        ExperimentSpec(
            "family-sweep",
            "Sensitivity: workload families vs epoch count / locality threshold",
            family_sweep,
            suites=("pointer_chase", "streaming", "branchy", "phased"),
        ),
        ExperimentSpec(
            "policy-sweep",
            "Miss-ratio curves: replacement policies vs cache size per workload family",
            policy_sweep_experiment,
            suites=("pointer_chase", "streaming", "branchy", "phased"),
        ),
    )
}


def experiment_by_name(name: str) -> ExperimentSpec:
    """Resolve a figure/table name to its spec, or raise ConfigurationError."""
    from repro.common.errors import ConfigurationError

    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(f"unknown experiment {name!r} (known: {known})") from None


def campaign_context(
    *,
    full: bool = False,
    instructions: Optional[int] = None,
    seed: Optional[int] = DEFAULT_SEED,
    runner: Optional[ExperimentRunner] = None,
    engine: Optional[str] = None,
    policy: Optional[str] = None,
) -> ExperimentContext:
    """Build the campaign context the CLI flags / a wire request describe.

    This is the single definition of the campaign defaults: the quick
    two-workload suites at :data:`QUICK_INSTRUCTIONS` unless ``full``, the
    paper-year seed, and an optional orchestration runner.  The CLI and the
    service both build their contexts here, which is what makes a remote
    submission bit-identical to a local ``python -m repro`` run.

    ``policy`` overrides the replacement policy of *both* cache levels of
    every machine the campaign simulates (timing policies only: OPT needs
    a future-reuse oracle and exists only in the offline MRC profiler).
    """
    from repro.workloads.suite import quick_fp_suite, quick_int_suite

    if full:
        fp_suite, int_suite = spec_fp_suite(), spec_int_suite()
        default_instructions = DEFAULT_INSTRUCTIONS_PER_WORKLOAD
    else:
        fp_suite, int_suite = quick_fp_suite(), quick_int_suite()
        default_instructions = QUICK_INSTRUCTIONS
    if engine is not None:
        from repro.sim.engine import engine_by_name

        engine_by_name(engine)  # fail fast on unknown engine names
    if policy is not None:
        from repro.memory.replacement import validate_policy_name

        # Fail fast, and keep the OPT oracle out of timing campaigns.
        validate_policy_name(policy, timing_only=True)
    return ExperimentContext(
        fp_suite=fp_suite,
        int_suite=int_suite,
        instructions_per_workload=(
            instructions if instructions is not None else default_instructions
        ),
        seed=seed,
        runner=runner,
        engine=engine,
        policy=policy,
    )

"""Named machine configurations used throughout the evaluation.

Table 2 of the paper names six configurations; this module reconstructs each
of them (and the variants needed by the figures) as a :class:`MachineConfig`
that knows how to build the corresponding processor model:

* ``OoO-64``          -- conventional out-of-order core, 64-entry ROB,
                         associative LSQ.
* ``OoO-64-SVW``      -- same core, load queue replaced by SVW re-execution.
* ``FMC-Central``     -- the FMC large-window machine with the idealised
                         single-cycle, unlimited central LSQ (Figure 7's
                         "Central LSQ" reference).
* ``FMC-Line``        -- FMC + ELSQ with the line-based ERT.
* ``FMC-Hash``        -- FMC + ELSQ with the hash-based ERT (10 bits).
* ``FMC-Hash-SVW``    -- FMC + ELSQ, load queues removed in favour of SVW.
* ``FMC-Hash-RSAC``   -- FMC + ELSQ with restricted store address calculation.

Every factory accepts keyword overrides so the benchmark sweeps (epoch sizes,
ERT hash bits, cache geometry, SSBF bits, disambiguation model, SQM on/off)
can derive variants without re-specifying the whole machine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Union

from repro.common.config import (
    CoreConfig,
    DisambiguationModel,
    ELSQConfig,
    ERTConfig,
    ERTKind,
    FMCConfig,
    LoadQueueScheme,
    MemoryHierarchyConfig,
    SVWConfig,
)
from repro.common.errors import ConfigurationError
from repro.common.stats import StatsRegistry
from repro.core.conventional import ConventionalLSQ, IdealCentralLSQ
from repro.core.elsq import EpochBasedLSQ
from repro.fmc.processor import FMCProcessor
from repro.sim.engine import DEFAULT_ENGINE
from repro.uarch.ooo_core import OutOfOrderCore


class MachineKind(enum.Enum):
    """Which timing core a configuration uses."""

    CONVENTIONAL = "conventional"
    FMC = "fmc"


class LSQKind(enum.Enum):
    """Which load/store-queue organisation a configuration uses."""

    CONVENTIONAL = "conventional"
    CONVENTIONAL_SVW = "conventional_svw"
    CENTRAL = "central"
    ELSQ = "elsq"


@dataclass(frozen=True)
class MachineConfig:
    """A fully specified machine: core, memory hierarchy and LSQ organisation.

    ``engine`` selects the simulation engine that drives this machine over a
    trace (:mod:`repro.sim.engine`): the optimised ``fast`` loop by default,
    or ``reference`` for the original processor-model walk.  The two are
    bit-identical (enforced by ``tests/differential/``), but the engine is
    still part of the machine's identity -- and therefore of every job's
    content address -- so cached results always record which loop produced
    them.
    """

    name: str
    kind: MachineKind
    lsq: LSQKind
    core: CoreConfig = field(default_factory=CoreConfig)
    fmc: FMCConfig = field(default_factory=FMCConfig)
    elsq: ELSQConfig = field(default_factory=ELSQConfig)
    hierarchy: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    svw: SVWConfig = field(default_factory=SVWConfig)
    engine: str = DEFAULT_ENGINE

    def __post_init__(self) -> None:
        if not self.engine or not isinstance(self.engine, str):
            raise ConfigurationError(
                f"machine {self.name!r}: engine must be a non-empty string"
            )

    def build(self, stats: Optional[StatsRegistry] = None) -> Union[OutOfOrderCore, FMCProcessor]:
        """Construct the processor model described by this configuration."""
        registry = stats if stats is not None else StatsRegistry()
        if self.kind is MachineKind.CONVENTIONAL:
            return self._build_conventional(registry)
        return self._build_fmc(registry)

    def _build_conventional(self, stats: StatsRegistry) -> OutOfOrderCore:
        core = OutOfOrderCore(
            config=self.core,
            hierarchy_config=self.hierarchy,
            stats=stats,
            name=self.name,
        )
        if self.lsq is LSQKind.CONVENTIONAL:
            core.policy = ConventionalLSQ(stats, core.hierarchy)
        elif self.lsq is LSQKind.CONVENTIONAL_SVW:
            core.policy = ConventionalLSQ(
                stats,
                core.hierarchy,
                load_queue_scheme=LoadQueueScheme.SVW_REEXECUTION,
                svw_config=self.svw,
            )
        else:
            raise ConfigurationError(
                f"machine {self.name!r}: a conventional core cannot host LSQ kind {self.lsq}"
            )
        return core

    def _build_fmc(self, stats: StatsRegistry) -> FMCProcessor:
        processor = FMCProcessor(
            config=self.fmc,
            elsq_config=self.elsq,
            hierarchy_config=self.hierarchy,
            stats=stats,
            name=self.name,
        )
        if self.lsq is LSQKind.CENTRAL:
            processor.policy = IdealCentralLSQ(
                stats,
                processor.hierarchy,
                round_trip_latency=self.fmc.interconnect.round_trip_latency,
            )
        elif self.lsq is LSQKind.ELSQ:
            processor.policy = EpochBasedLSQ(
                self.elsq, stats, processor.hierarchy, self.fmc.interconnect
            )
        else:
            raise ConfigurationError(
                f"machine {self.name!r}: the FMC cannot host LSQ kind {self.lsq}"
            )
        return processor

    # ------------------------------------------------------------------
    # Convenience derivation helpers used by the sweeps
    # ------------------------------------------------------------------

    def with_hierarchy(self, hierarchy: MemoryHierarchyConfig, name: Optional[str] = None) -> "MachineConfig":
        """Return a copy with a different memory hierarchy."""
        return replace(self, hierarchy=hierarchy, name=name if name else self.name)

    def with_elsq(self, elsq: ELSQConfig, name: Optional[str] = None) -> "MachineConfig":
        """Return a copy with a different ELSQ configuration."""
        return replace(self, elsq=elsq, name=name if name else self.name)

    def with_engine(self, engine: str) -> "MachineConfig":
        """Return a copy driven by a different simulation engine."""
        return replace(self, engine=engine)

    def with_policy(self, policy: str) -> "MachineConfig":
        """Return a copy with both cache levels running ``policy``.

        The policy lands inside the hierarchy's :class:`CacheConfig` fields,
        so it flows into the job content address exactly like any other
        machine knob -- no stale cross-policy cache hits are possible.
        """
        return replace(self, hierarchy=self.hierarchy.with_policy(policy))

    def renamed(self, name: str) -> "MachineConfig":
        """Return a copy under a different name."""
        return replace(self, name=name)


# ----------------------------------------------------------------------
# Paper configurations
# ----------------------------------------------------------------------


def ooo_64(name: str = "OoO-64") -> MachineConfig:
    """The conventional 64-entry-ROB baseline processor."""
    return MachineConfig(name=name, kind=MachineKind.CONVENTIONAL, lsq=LSQKind.CONVENTIONAL)


def ooo_64_svw(
    ssbf_index_bits: int = 10, check_stores: bool = False, name: Optional[str] = None
) -> MachineConfig:
    """The conventional baseline with SVW load re-execution instead of a load queue."""
    label = name if name else f"OoO-64-SVW-{ssbf_index_bits}b"
    return MachineConfig(
        name=label,
        kind=MachineKind.CONVENTIONAL,
        lsq=LSQKind.CONVENTIONAL_SVW,
        svw=SVWConfig(ssbf_index_bits=ssbf_index_bits, check_stores=check_stores),
    )


def fmc_central(name: str = "FMC-Central") -> MachineConfig:
    """The FMC with an idealised single-cycle unlimited central LSQ."""
    return MachineConfig(name=name, kind=MachineKind.FMC, lsq=LSQKind.CENTRAL)


def fmc_elsq(
    ert_kind: ERTKind = ERTKind.HASH,
    hash_bits: int = 10,
    store_queue_mirror: bool = True,
    disambiguation: DisambiguationModel = DisambiguationModel.FULL,
    load_queue_scheme: LoadQueueScheme = LoadQueueScheme.ASSOCIATIVE,
    ssbf_index_bits: int = 10,
    check_stores: bool = False,
    epoch_load_entries: int = 64,
    epoch_store_entries: int = 32,
    num_epochs: int = 16,
    locality_threshold_cycles: int = 30,
    name: Optional[str] = None,
) -> MachineConfig:
    """A fully parameterised FMC + ELSQ machine (base of every ELSQ variant).

    ``num_epochs`` sizes both the ELSQ's epoch bookkeeping and the FMC's
    memory-engine pool (one live epoch per engine): the two counts describe
    the same physical resource, so the sensitivity sweeps vary them
    together.  ``locality_threshold_cycles`` is the decode-to-address-ready
    latency above which an instruction is classified low-locality and
    migrated to the Memory Processor.
    """
    elsq = ELSQConfig(
        ert=ERTConfig(kind=ert_kind, hash_bits=hash_bits),
        store_queue_mirror=store_queue_mirror,
        disambiguation=disambiguation,
        load_queue_scheme=load_queue_scheme,
        svw=SVWConfig(ssbf_index_bits=ssbf_index_bits, check_stores=check_stores),
        epoch_load_entries=epoch_load_entries,
        epoch_store_entries=epoch_store_entries,
        num_epochs=num_epochs,
        locality_threshold_cycles=locality_threshold_cycles,
    )
    if name is None:
        suffix = "Line" if ert_kind is ERTKind.LINE else f"Hash{hash_bits}"
        name = f"FMC-{suffix}{'' if store_queue_mirror else '-noSQM'}"
    return MachineConfig(
        name=name,
        kind=MachineKind.FMC,
        lsq=LSQKind.ELSQ,
        fmc=FMCConfig(num_memory_engines=num_epochs),
        elsq=elsq,
    )


def fmc_line(store_queue_mirror: bool = True, name: Optional[str] = None) -> MachineConfig:
    """FMC + ELSQ with the line-based (cache-coupled) ERT."""
    return fmc_elsq(
        ert_kind=ERTKind.LINE,
        store_queue_mirror=store_queue_mirror,
        name=name if name else ("FMC-Line" if store_queue_mirror else "FMC-Line-noSQM"),
    )


def fmc_hash(
    hash_bits: int = 10, store_queue_mirror: bool = True, name: Optional[str] = None
) -> MachineConfig:
    """FMC + ELSQ with the hash-based (Bloom) ERT."""
    return fmc_elsq(
        ert_kind=ERTKind.HASH,
        hash_bits=hash_bits,
        store_queue_mirror=store_queue_mirror,
        name=name if name else ("FMC-Hash" if store_queue_mirror else "FMC-Hash-noSQM"),
    )


def fmc_hash_svw(
    ssbf_index_bits: int = 10, check_stores: bool = False, name: Optional[str] = None
) -> MachineConfig:
    """FMC + ELSQ with SVW re-execution replacing the associative load queues."""
    return fmc_elsq(
        ert_kind=ERTKind.HASH,
        load_queue_scheme=LoadQueueScheme.SVW_REEXECUTION,
        ssbf_index_bits=ssbf_index_bits,
        check_stores=check_stores,
        name=name if name else f"FMC-Hash-SVW-{ssbf_index_bits}b",
    )


def fmc_hash_rsac(name: str = "FMC-Hash-RSAC") -> MachineConfig:
    """FMC + ELSQ with restricted store address calculation."""
    return fmc_elsq(
        ert_kind=ERTKind.HASH,
        disambiguation=DisambiguationModel.RESTRICTED_SAC,
        name=name,
    )


#: The configurations of Table 2, by their paper names.
PAPER_CONFIGS: Dict[str, Callable[[], MachineConfig]] = {
    "OoO-64": ooo_64,
    "OoO-64-SVW": ooo_64_svw,
    "FMC-Central": fmc_central,
    "FMC-Line": fmc_line,
    "FMC-Hash": fmc_hash,
    "FMC-Hash-SVW": fmc_hash_svw,
    "FMC-Hash-RSAC": fmc_hash_rsac,
}


def machine_by_name(name: str) -> MachineConfig:
    """Return one of the paper's named configurations."""
    try:
        factory = PAPER_CONFIGS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown machine {name!r}; available: {sorted(PAPER_CONFIGS)}"
        ) from None
    return factory()

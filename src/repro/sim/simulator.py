"""The simulation driver: run machines over traces and suites.

:class:`Simulator` is the top-level entry point of the library: give it a
:class:`~repro.sim.configs.MachineConfig` and it will run single traces
(:meth:`Simulator.run_trace`) or whole workload suites
(:meth:`Simulator.run_suite`), producing per-workload
:class:`~repro.uarch.result.CoreResult` records and suite-level
:class:`SuiteResult` aggregates.  The aggregation follows the paper's
methodology (Section 5.1): every metric is the arithmetic mean over the
suite's members.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.errors import SimulationError
from repro.isa.trace import Trace
from repro.sim.configs import MachineConfig
from repro.sim.engine import engine_by_name
from repro.uarch.result import CoreResult
from repro.workloads.base import SyntheticWorkload, WorkloadParameters
from repro.workloads.suite import WorkloadSuite

#: Default trace length per suite member.  Long enough for the large-window
#: behaviours (epoch recycling, SVW windows, ERT population) to reach steady
#: state, short enough for pure-Python sweeps.
DEFAULT_INSTRUCTIONS_PER_WORKLOAD = 30_000


@dataclass(frozen=True)
class SuiteResult:
    """Aggregate of one machine over one workload suite."""

    machine_name: str
    suite_name: str
    results: Dict[str, CoreResult] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.results:
            raise SimulationError("a suite result needs at least one workload result")

    @property
    def mean_ipc(self) -> float:
        """Arithmetic mean IPC over the suite (the paper's headline metric)."""
        values = [result.ipc for result in self.results.values()]
        return sum(values) / len(values)

    def mean_counter_per_100m(self, counter: str) -> float:
        """Arithmetic mean of a counter scaled to per-100M-instruction rates."""
        values = [result.per_100m(counter) for result in self.results.values()]
        return sum(values) / len(values)

    def mean_counter_per_100m_millions(self, counter: str) -> float:
        """Same as :meth:`mean_counter_per_100m` but in millions (Table 2 unit)."""
        return self.mean_counter_per_100m(counter) / 1e6

    def mean_high_locality_fraction(self) -> Optional[float]:
        """Mean fraction of cycles with an idle Memory Processor, if available."""
        values = [
            result.high_locality_fraction
            for result in self.results.values()
            if result.high_locality_fraction is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def mean_allocated_epochs(self) -> Optional[float]:
        """Mean number of simultaneously allocated epochs, if available."""
        values = [
            result.mean_allocated_epochs
            for result in self.results.values()
            if result.mean_allocated_epochs is not None
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def speedup_over(self, baseline: "SuiteResult") -> float:
        """Mean IPC of this result relative to the baseline's mean IPC."""
        if baseline.mean_ipc <= 0:
            raise SimulationError("baseline mean IPC is zero; speed-up undefined")
        return self.mean_ipc / baseline.mean_ipc

    def workload_names(self) -> List[str]:
        """The workloads contributing to this aggregate, in insertion order."""
        return list(self.results)


class Simulator:
    """Runs one machine configuration over traces and workload suites."""

    def __init__(self, machine: MachineConfig) -> None:
        self.machine = machine

    def run_trace(self, trace: Trace) -> CoreResult:
        """Simulate a single trace through the machine's simulation engine.

        The engine (:attr:`MachineConfig.engine`) decides *how* the freshly
        built processor walks the trace -- the original reference loop or the
        optimised fast loop -- and the two are verified bit-identical by the
        differential suite.
        """
        return engine_by_name(self.machine.engine).run(self.machine, trace)

    def run_workload(
        self,
        parameters: WorkloadParameters,
        num_instructions: int = DEFAULT_INSTRUCTIONS_PER_WORKLOAD,
        seed: Optional[int] = None,
    ) -> CoreResult:
        """Generate one workload's trace and simulate it."""
        trace = SyntheticWorkload(parameters, seed=seed).generate(num_instructions)
        return self.run_trace(trace)

    def run_suite(
        self,
        suite: WorkloadSuite,
        num_instructions: int = DEFAULT_INSTRUCTIONS_PER_WORKLOAD,
        seed: Optional[int] = None,
        traces: Optional[Sequence[Trace]] = None,
    ) -> SuiteResult:
        """Simulate every member of a suite and aggregate.

        ``traces`` may be supplied to reuse pre-generated traces (the sweeps
        do this so every machine sees the exact same instruction streams).
        """
        if traces is None:
            traces = suite.generate_traces(num_instructions, seed=seed)
        results = {trace.name: self.run_trace(trace) for trace in traces}
        return SuiteResult(
            machine_name=self.machine.name, suite_name=suite.name, results=results
        )

"""Stable JSON (de)serialization and hashing of configuration dataclasses.

The experiment orchestration layer (:mod:`repro.exp`) needs two guarantees
that ``pickle`` and ``hash()`` do not give:

* a **canonical, process-independent representation** of a configuration so
  that the on-disk result cache can be shared between runs, machines and
  Python versions (``hash()`` is salted per process; ``pickle`` is neither
  canonical nor stable across versions), and
* a **round trip** from configuration objects to plain JSON and back, so
  cached results and CLI artifacts can record exactly which machine and
  workload produced them.

:func:`to_jsonable` lowers any tree of frozen dataclasses, enums, tuples and
primitives to plain JSON types; :func:`from_jsonable` rebuilds the original
objects from the dataclass type hints; :func:`stable_hash` derives a SHA-256
content address from the canonical JSON form.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import typing
from typing import Any, Dict, Mapping, Type, TypeVar, Union

from repro.common.errors import ConfigurationError

_T = TypeVar("_T")


def to_jsonable(obj: Any) -> Any:
    """Lower ``obj`` to plain JSON types (dict / list / str / int / float / bool / None).

    Dataclasses become ``{field: value}`` dictionaries (fields whose names
    start with an underscore are treated as derived state and skipped), enums
    become their ``value``, and tuples become lists.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            field.name: to_jsonable(getattr(obj, field.name))
            for field in dataclasses.fields(obj)
            if not field.name.startswith("_")
        }
    if isinstance(obj, enum.Enum):
        return to_jsonable(obj.value)
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(item) for item in obj]
    if isinstance(obj, Mapping):
        return {str(key): to_jsonable(value) for key, value in obj.items()}
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    raise ConfigurationError(f"cannot serialise {type(obj).__name__} to JSON")


def from_jsonable(cls: Type[_T], data: Any) -> _T:
    """Rebuild an instance of dataclass ``cls`` from :func:`to_jsonable` output.

    Reconstruction is driven by the dataclass type hints and supports the
    vocabulary the configuration classes use: nested dataclasses, enums,
    ``Optional``, homogeneous and fixed-arity tuples, lists, dicts and
    primitives.
    """
    return _build(cls, data)


def _build(annotation: Any, data: Any) -> Any:
    if annotation is Any:
        return data
    origin = typing.get_origin(annotation)
    if origin is None:
        if dataclasses.is_dataclass(annotation):
            return _build_dataclass(annotation, data)
        if isinstance(annotation, type) and issubclass(annotation, enum.Enum):
            return annotation(data)
        if annotation is float:
            return float(data)
        if annotation in (int, str, bool):
            return data
        if annotation is type(None):
            return None
        raise ConfigurationError(f"cannot deserialise into {annotation!r}")
    if origin is tuple:
        args = typing.get_args(annotation)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(_build(args[0], item) for item in data)
        if len(args) != len(data):
            raise ConfigurationError(
                f"expected {len(args)} tuple items for {annotation!r}, got {len(data)}"
            )
        return tuple(_build(arg, item) for arg, item in zip(args, data))
    if origin is list:
        (item_type,) = typing.get_args(annotation)
        return [_build(item_type, item) for item in data]
    if origin is dict:
        key_type, value_type = typing.get_args(annotation)
        return {_build(key_type, key): _build(value_type, value) for key, value in data.items()}
    if origin is Union:
        members = [arg for arg in typing.get_args(annotation) if arg is not type(None)]
        if data is None:
            return None
        for member in members:
            try:
                return _build(member, data)
            except (ConfigurationError, TypeError, ValueError, KeyError):
                continue
        raise ConfigurationError(f"no member of {annotation!r} accepts {data!r}")
    raise ConfigurationError(f"cannot deserialise into {annotation!r}")


def _build_dataclass(cls: Type[_T], data: Any) -> _T:
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"expected a mapping to rebuild {cls.__name__}, got {type(data).__name__}"
        )
    hints = typing.get_type_hints(cls)
    kwargs = {}
    for field in dataclasses.fields(cls):
        if not field.init or field.name.startswith("_"):
            continue
        if field.name in data:
            kwargs[field.name] = _build(hints[field.name], data[field.name])
    return cls(**kwargs)


#: Version of the service wire format.  Every HTTP body exchanged with
#: :mod:`repro.service` is wrapped in an envelope carrying this number, so a
#: client and server disagreeing about the schema fail loudly instead of
#: misinterpreting payloads.  Bump on any incompatible payload change.
#:
#: Version 2 added the optional tenancy fields at the envelope level
#: (``tenant``, ``priority``) plus ``schema_version`` naming the payload's
#: own schema.  Version-1 envelopes remain accepted (mapped to the default
#: tenant and the batch lane, with a deprecation note in responses).
WIRE_SCHEMA_VERSION = 2

#: Envelope versions this build still reads.
SUPPORTED_WIRE_SCHEMAS = (1, 2)


@dataclasses.dataclass(frozen=True)
class WireEnvelope:
    """A validated wire envelope, with the v2 transport fields exposed.

    ``tenant`` / ``priority`` / ``schema_version`` are ``None`` for v1
    envelopes (and for v2 envelopes that omit them); :attr:`deprecated`
    tells the server to attach a migration note to its response.
    """

    kind: str
    payload: Any
    wire_schema: int
    tenant: Any = None
    priority: Any = None
    schema_version: Any = None
    #: Request correlation ID (``X-Repro-Trace-Id``); ``None`` when absent.
    trace_id: Any = None

    @property
    def deprecated(self) -> bool:
        return self.wire_schema < WIRE_SCHEMA_VERSION


def wire_envelope(
    kind: str,
    payload: Any,
    *,
    tenant: Any = None,
    priority: Any = None,
    schema_version: Any = None,
    trace_id: Any = None,
    wire_schema: int = WIRE_SCHEMA_VERSION,
) -> Dict[str, Any]:
    """Wrap ``payload`` in a versioned wire envelope.

    The envelope is the unit every service endpoint sends and receives:
    ``{"wire_schema": N, "kind": "<message type>", "payload": <JSON>}``.
    Version-2 envelopes additionally carry ``tenant`` / ``priority``
    (admission metadata for submissions), ``schema_version`` (the payload's
    own schema number) and ``trace_id`` (the request's correlation ID, also
    carried in the ``X-Repro-Trace-Id`` header) when provided.  ``payload``
    may be any :func:`to_jsonable`-serialisable object.
    """
    document: Dict[str, Any] = {
        "wire_schema": wire_schema,
        "kind": kind,
        "payload": to_jsonable(payload),
    }
    if wire_schema >= 2:
        if tenant is not None:
            document["tenant"] = tenant
        if priority is not None:
            document["priority"] = priority
        if schema_version is not None:
            document["schema_version"] = schema_version
        if trace_id is not None:
            document["trace_id"] = trace_id
    return document


def read_envelope(data: Any, kind: str) -> WireEnvelope:
    """Validate a wire envelope (any supported version) and return it whole.

    Raises :class:`ConfigurationError` when ``data`` is not an envelope, its
    schema version is unsupported or its kind is not the expected one.
    """
    if not isinstance(data, Mapping):
        raise ConfigurationError(
            f"expected a wire envelope mapping, got {type(data).__name__}"
        )
    schema = data.get("wire_schema")
    if schema not in SUPPORTED_WIRE_SCHEMAS:
        raise ConfigurationError(
            f"unsupported wire schema {schema!r} "
            f"(this build speaks {', '.join(map(str, SUPPORTED_WIRE_SCHEMAS))})"
        )
    if data.get("kind") != kind:
        raise ConfigurationError(f"expected envelope kind {kind!r}, got {data.get('kind')!r}")
    if "payload" not in data:
        raise ConfigurationError("wire envelope is missing its payload")
    return WireEnvelope(
        kind=kind,
        payload=data["payload"],
        wire_schema=schema,
        tenant=data.get("tenant"),
        priority=data.get("priority"),
        schema_version=data.get("schema_version"),
        trace_id=data.get("trace_id"),
    )


def open_envelope(data: Any, kind: str) -> Any:
    """Validate a wire envelope and return its payload (either version)."""
    return read_envelope(data, kind).payload


def canonical_json(obj: Any) -> str:
    """Return the canonical (sorted-key, minimal-separator) JSON form of ``obj``."""
    return json.dumps(to_jsonable(obj), sort_keys=True, separators=(",", ":"))


def stable_hash(obj: Any) -> str:
    """Return a SHA-256 content address of ``obj``'s canonical JSON form.

    The hash is stable across processes, interpreter restarts and
    ``PYTHONHASHSEED`` values, so it is safe to use as an on-disk cache key.
    """
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()

"""Deterministic random number helpers.

Every stochastic decision in the library (synthetic workload generation,
address selection, branch outcomes) flows through :class:`DeterministicRng`.
The class is a thin wrapper around :class:`random.Random` that

* always requires an explicit integer seed, so experiments are reproducible
  from configuration alone, and
* offers the handful of distributions the workload generators need with
  validation and clearer names.

Seeds for sub-components are derived with :func:`derive_seed`, which hashes
the parent seed together with a string label.  Deriving rather than reusing
the parent seed keeps independent components statistically decoupled while
remaining fully deterministic.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

from repro.common.errors import ConfigurationError

_T = TypeVar("_T")

_MAX_SEED = 2**63 - 1


def derive_seed(parent_seed: int, label: str) -> int:
    """Return a new deterministic seed derived from ``parent_seed`` and ``label``.

    The derivation uses SHA-256 over the decimal representation of the parent
    seed and the label, truncated to 63 bits.  Two different labels (or two
    different parent seeds) therefore yield independent-looking streams while
    the mapping stays stable across Python versions and platforms (unlike
    ``hash()`` which is salted per process).
    """
    if not isinstance(parent_seed, int):
        raise ConfigurationError(f"seed must be an int, got {type(parent_seed).__name__}")
    digest = hashlib.sha256(f"{parent_seed}:{label}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MAX_SEED


class DeterministicRng:
    """A seeded random source with the distributions used by the workloads.

    Parameters
    ----------
    seed:
        Integer seed.  The same seed always produces the same stream.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise ConfigurationError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        """The seed this generator was constructed with."""
        return self._seed

    def spawn(self, label: str) -> "DeterministicRng":
        """Return a new independent generator derived from this one and ``label``."""
        return DeterministicRng(derive_seed(self._seed, label))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        """Return a float uniformly distributed in ``[low, high)``."""
        if high < low:
            raise ConfigurationError(f"uniform() requires low <= high, got [{low}, {high})")
        return low + (high - low) * self._random.random()

    def chance(self, probability: float) -> bool:
        """Return ``True`` with the given probability.

        Probabilities of exactly 0 and 1 short-circuit so callers may use them
        to disable or force behaviours without consuming randomness
        differently across configurations.
        """
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(f"probability must lie in [0, 1], got {probability}")
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def integer(self, low: int, high: int) -> int:
        """Return an integer uniformly distributed in ``[low, high]`` inclusive."""
        if high < low:
            raise ConfigurationError(f"integer() requires low <= high, got [{low}, {high}]")
        return self._random.randint(low, high)

    def choice(self, options: Sequence[_T]) -> _T:
        """Return one element chosen uniformly from a non-empty sequence."""
        if not options:
            raise ConfigurationError("choice() requires a non-empty sequence")
        return self._random.choice(options)

    def weighted_choice(self, options: Sequence[_T], weights: Sequence[float]) -> _T:
        """Return one element of ``options`` chosen with the given relative weights."""
        if not options:
            raise ConfigurationError("weighted_choice() requires a non-empty sequence")
        if len(options) != len(weights):
            raise ConfigurationError(
                f"weighted_choice() got {len(options)} options but {len(weights)} weights"
            )
        if any(weight < 0 for weight in weights):
            raise ConfigurationError("weighted_choice() weights must be non-negative")
        if sum(weights) <= 0:
            raise ConfigurationError("weighted_choice() weights must not all be zero")
        return self._random.choices(list(options), weights=list(weights), k=1)[0]

    def geometric(self, mean: float, maximum: int) -> int:
        """Return a geometrically distributed integer in ``[1, maximum]``.

        ``mean`` controls the expected value of the unbounded distribution;
        the result is clamped to ``maximum``.  Used for dependence distances
        and store→load forwarding distances, which are strongly skewed toward
        small values in real programs.
        """
        if mean <= 0:
            raise ConfigurationError(f"geometric() mean must be positive, got {mean}")
        if maximum < 1:
            raise ConfigurationError(f"geometric() maximum must be >= 1, got {maximum}")
        probability = min(1.0, 1.0 / mean)
        value = 1
        while value < maximum and not self._random.random() < probability:
            value += 1
        return value

    def shuffled(self, items: Sequence[_T]) -> list:
        """Return a new list with the items of ``items`` in random order."""
        copy = list(items)
        self._random.shuffle(copy)
        return copy

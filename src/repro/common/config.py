"""Configuration dataclasses mirroring Table 1 of the paper.

Every tunable of the simulated machines is expressed as a frozen dataclass
with defaults equal to the paper's *default processor parameters* (Table 1).
Constructing a configuration validates it eagerly so that an impossible
machine (a cache whose size is not a multiple of ``line_size * associativity``,
a zero-entry queue, a negative latency) is rejected before any simulation
starts.

The configuration objects are deliberately dumb containers -- the structures
in :mod:`repro.memory`, :mod:`repro.core`, :mod:`repro.uarch` and
:mod:`repro.fmc` interpret them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.common.errors import ConfigurationError


def _require_positive(name: str, value: int) -> None:
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def _require_non_negative(name: str, value: int) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")


def _require_power_of_two(name: str, value: int) -> None:
    if value <= 0 or value & (value - 1) != 0:
        raise ConfigurationError(f"{name} must be a power of two, got {value}")


class ERTKind(enum.Enum):
    """The two global-disambiguation filter organisations studied in the paper.

    * ``LINE`` -- one bit-vector per L1 cache line (requires line locking).
    * ``HASH`` -- Bloom-style filter indexed by the low ``n`` address bits.
    * ``NONE`` -- no filter; every global search scans all active epochs
      (used only as an analysis baseline, never proposed by the paper).
    """

    LINE = "line"
    HASH = "hash"
    NONE = "none"


class DisambiguationModel(enum.Enum):
    """Restricted disambiguation models from Section 3.3 of the paper."""

    FULL = "full"
    RESTRICTED_SAC = "rsac"
    RESTRICTED_LAC = "rlac"
    RESTRICTED_SAC_LAC = "rsac_lac"

    @property
    def restricts_store_address_calculation(self) -> bool:
        """Whether stores with miss-dependent addresses must resolve in the HL-LSQ."""
        return self in (DisambiguationModel.RESTRICTED_SAC, DisambiguationModel.RESTRICTED_SAC_LAC)

    @property
    def restricts_load_address_calculation(self) -> bool:
        """Whether loads with miss-dependent addresses must resolve in the HL-LSQ."""
        return self in (DisambiguationModel.RESTRICTED_LAC, DisambiguationModel.RESTRICTED_SAC_LAC)


class LoadQueueScheme(enum.Enum):
    """How load ordering violations are detected.

    * ``ASSOCIATIVE`` -- conventional associative load queues searched by
      stores at issue (the ELSQ default).
    * ``SVW_REEXECUTION`` -- the load queue is non-associative; loads
      re-execute at commit when the Store Vulnerability Window filter says
      they may have been violated (Section 3.5 / 5.6).
    """

    ASSOCIATIVE = "associative"
    SVW_REEXECUTION = "svw"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry, latency and replacement policy of a single cache level.

    ``replacement_policy`` names an entry of the policy registry
    (:data:`repro.memory.replacement.POLICY_NAMES`).  The policy is part of
    the cache's identity -- it serializes with the config and therefore
    flows into every job content address -- so results simulated under
    different policies can never collide in any cache or coalescing key.
    """

    size_bytes: int
    associativity: int
    line_size: int
    latency: int
    name: str = "cache"
    replacement_policy: str = "lru"

    def __post_init__(self) -> None:
        # Local import: the policy registry lives a layer above this module
        # (repro.memory imports repro.common), so the name check resolves at
        # construction time rather than import time.
        from repro.memory.replacement import validate_policy_name

        _require_positive(f"{self.name}.size_bytes", self.size_bytes)
        _require_positive(f"{self.name}.associativity", self.associativity)
        _require_power_of_two(f"{self.name}.line_size", self.line_size)
        _require_non_negative(f"{self.name}.latency", self.latency)
        validate_policy_name(self.replacement_policy)
        if self.size_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigurationError(
                f"{self.name}: size {self.size_bytes} is not a multiple of "
                f"line_size*associativity ({self.line_size}*{self.associativity})"
            )
        num_sets = self.size_bytes // (self.line_size * self.associativity)
        if num_sets & (num_sets - 1) != 0:
            raise ConfigurationError(
                f"{self.name}: number of sets ({num_sets}) must be a power of two"
            )

    @property
    def num_sets(self) -> int:
        """Number of sets in the cache."""
        return self.size_bytes // (self.line_size * self.associativity)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """The L1 / L2 / main-memory hierarchy of Table 1."""

    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, associativity=4, line_size=32, latency=1, name="L1"
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=2 * 1024 * 1024, associativity=4, line_size=32, latency=10, name="L2"
        )
    )
    main_memory_latency: int = 400
    cache_ports: int = 2

    def __post_init__(self) -> None:
        _require_non_negative("main_memory_latency", self.main_memory_latency)
        _require_positive("cache_ports", self.cache_ports)
        if self.l2.line_size < self.l1.line_size:
            raise ConfigurationError("L2 line size must be >= L1 line size")

    def with_l2_size(self, size_bytes: int) -> "MemoryHierarchyConfig":
        """Return a copy with the L2 capacity changed (used by Figure 11)."""
        return replace(self, l2=replace(self.l2, size_bytes=size_bytes))

    def with_l1(self, size_bytes: int, associativity: int) -> "MemoryHierarchyConfig":
        """Return a copy with a different L1 geometry (used by Figure 8b/c)."""
        return replace(
            self, l1=replace(self.l1, size_bytes=size_bytes, associativity=associativity)
        )

    def with_policy(self, policy: str) -> "MemoryHierarchyConfig":
        """Return a copy with both cache levels running ``policy``."""
        return replace(
            self,
            l1=replace(self.l1, replacement_policy=policy),
            l2=replace(self.l2, replacement_policy=policy),
        )


@dataclass(frozen=True)
class CoreConfig:
    """An out-of-order core: the OoO-64 baseline and the FMC Cache Processor.

    Defaults reproduce the OoO-64 / Cache Processor column of Table 1.
    """

    fetch_width: int = 4
    decode_latency: int = 3
    rob_size: int = 64
    int_issue_queue_entries: int = 40
    fp_issue_queue_entries: int = 40
    issue_width: int = 4
    commit_width: int = 4
    int_registers: int = 96
    fp_registers: int = 96
    int_alu_latency: int = 1
    fp_alu_latency: int = 4
    branch_latency: int = 1
    branch_mispredict_penalty: int = 12
    load_queue_entries: int = 32
    store_queue_entries: int = 24

    def __post_init__(self) -> None:
        _require_positive("fetch_width", self.fetch_width)
        _require_non_negative("decode_latency", self.decode_latency)
        _require_positive("rob_size", self.rob_size)
        _require_positive("int_issue_queue_entries", self.int_issue_queue_entries)
        _require_positive("fp_issue_queue_entries", self.fp_issue_queue_entries)
        _require_positive("issue_width", self.issue_width)
        _require_positive("commit_width", self.commit_width)
        _require_positive("int_registers", self.int_registers)
        _require_positive("fp_registers", self.fp_registers)
        _require_positive("int_alu_latency", self.int_alu_latency)
        _require_positive("fp_alu_latency", self.fp_alu_latency)
        _require_positive("branch_latency", self.branch_latency)
        _require_non_negative("branch_mispredict_penalty", self.branch_mispredict_penalty)
        _require_positive("load_queue_entries", self.load_queue_entries)
        _require_positive("store_queue_entries", self.store_queue_entries)


@dataclass(frozen=True)
class MemoryEngineConfig:
    """One in-order memory engine of the FMC Memory Processor (Table 1)."""

    max_instructions: int = 128
    max_loads: int = 64
    max_stores: int = 32
    issue_queue_entries: int = 20
    issue_width: int = 2

    def __post_init__(self) -> None:
        _require_positive("max_instructions", self.max_instructions)
        _require_positive("max_loads", self.max_loads)
        _require_positive("max_stores", self.max_stores)
        _require_positive("issue_queue_entries", self.issue_queue_entries)
        _require_positive("issue_width", self.issue_width)
        if self.max_loads > self.max_instructions or self.max_stores > self.max_instructions:
            raise ConfigurationError(
                "per-epoch load/store capacity cannot exceed max_instructions"
            )


@dataclass(frozen=True)
class InterconnectConfig:
    """Latency model of the CP <-> MP bus and the inter-engine mesh."""

    cp_to_mp_latency: int = 4
    hop_latency: int = 1

    def __post_init__(self) -> None:
        _require_non_negative("cp_to_mp_latency", self.cp_to_mp_latency)
        _require_non_negative("hop_latency", self.hop_latency)

    @property
    def round_trip_latency(self) -> int:
        """A full CP -> MP -> CP round trip (the paper quotes > 8 cycles)."""
        return 2 * self.cp_to_mp_latency


@dataclass(frozen=True)
class ERTConfig:
    """Epoch Resolution Table configuration (Section 3.4)."""

    kind: ERTKind = ERTKind.HASH
    hash_bits: int = 10
    entry_bits: int = 16

    def __post_init__(self) -> None:
        if self.kind is ERTKind.HASH:
            if not 1 <= self.hash_bits <= 32:
                raise ConfigurationError(f"hash_bits must lie in [1, 32], got {self.hash_bits}")
        _require_positive("entry_bits", self.entry_bits)

    @property
    def hash_entries(self) -> int:
        """Number of rows in a hash-based ERT."""
        return 1 << self.hash_bits

    def storage_bytes(self, l1: Optional[CacheConfig] = None) -> int:
        """Total storage of one ERT table (loads *or* stores) in bytes.

        Line-based tables have one row per L1 line and therefore need the L1
        geometry to size themselves; hash-based tables are independent of the
        cache.
        """
        if self.kind is ERTKind.LINE:
            if l1 is None:
                raise ConfigurationError("line-based ERT sizing requires the L1 configuration")
            rows = l1.num_lines
        else:
            rows = self.hash_entries
        return rows * self.entry_bits // 8


@dataclass(frozen=True)
class SVWConfig:
    """Store Vulnerability Window re-execution configuration (Section 3.5)."""

    ssbf_index_bits: int = 10
    check_stores: bool = False

    def __post_init__(self) -> None:
        if not 1 <= self.ssbf_index_bits <= 32:
            raise ConfigurationError(
                f"ssbf_index_bits must lie in [1, 32], got {self.ssbf_index_bits}"
            )

    @property
    def ssbf_entries(self) -> int:
        """Number of entries of the Store Sequence Bloom Filter."""
        return 1 << self.ssbf_index_bits


@dataclass(frozen=True)
class ELSQConfig:
    """Full configuration of the Epoch-based Load/Store Queue."""

    hl_load_entries: int = 32
    hl_store_entries: int = 24
    num_epochs: int = 16
    epoch_load_entries: int = 64
    epoch_store_entries: int = 32
    ert: ERTConfig = field(default_factory=ERTConfig)
    disambiguation: DisambiguationModel = DisambiguationModel.FULL
    store_queue_mirror: bool = True
    load_queue_scheme: LoadQueueScheme = LoadQueueScheme.ASSOCIATIVE
    svw: SVWConfig = field(default_factory=SVWConfig)
    locality_threshold_cycles: int = 30

    def __post_init__(self) -> None:
        _require_positive("hl_load_entries", self.hl_load_entries)
        _require_positive("hl_store_entries", self.hl_store_entries)
        _require_positive("num_epochs", self.num_epochs)
        _require_positive("epoch_load_entries", self.epoch_load_entries)
        _require_positive("epoch_store_entries", self.epoch_store_entries)
        _require_positive("locality_threshold_cycles", self.locality_threshold_cycles)
        if (
            self.load_queue_scheme is LoadQueueScheme.SVW_REEXECUTION
            and self.disambiguation.restricts_load_address_calculation
        ):
            raise ConfigurationError(
                "SVW re-execution and restricted LAC both remove the load queue; "
                "combining them is not meaningful"
            )


@dataclass(frozen=True)
class FMCConfig:
    """The Flexible MultiCore processor hosting the ELSQ (Section 4)."""

    cache_processor: CoreConfig = field(default_factory=CoreConfig)
    memory_engine: MemoryEngineConfig = field(default_factory=MemoryEngineConfig)
    num_memory_engines: int = 16
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    def __post_init__(self) -> None:
        _require_positive("num_memory_engines", self.num_memory_engines)

    @property
    def max_in_flight_instructions(self) -> int:
        """Upper bound on the number of simultaneously in-flight instructions."""
        return (
            self.cache_processor.rob_size
            + self.num_memory_engines * self.memory_engine.max_instructions
        )

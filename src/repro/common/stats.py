"""Counters, histograms and the statistics registry.

The paper's evaluation is driven almost entirely by *event counts*: accesses
to each LSQ component (Table 2), ERT false positives (Figure 8a), load
re-executions (Figure 10), cycles spent in high-locality mode (Figure 11) and
the decode→address-calculation latency histogram (Figure 1).  This module
provides the small accounting vocabulary the rest of the library uses to
collect those numbers:

* :class:`Counter` -- a named monotonically increasing event counter.
* :class:`Histogram` -- a fixed-bin-width histogram (used for Figure 1).
* :class:`StatsRegistry` -- a flat namespace of counters and histograms owned
  by a simulation run.  Structures receive the registry at construction time
  and record into it; the simulation result exposes it read-only.

All classes are plain Python with no external dependencies so they can be
used from the innermost simulation loops without overhead surprises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.common.errors import ConfigurationError


class Counter:
    """A named, monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, amount: int = 1) -> None:
        """Increase the counter by ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        """Reset the counter to zero."""
        self.value = 0

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, value={self.value})"


class Histogram:
    """A histogram with uniform-width bins starting at zero.

    Values greater than or equal to ``bin_width * num_bins`` fall into the
    overflow bin, mirroring how Figure 1 of the paper groups
    decode→address-calculation distances into 30-cycle buckets.
    """

    __slots__ = ("name", "bin_width", "num_bins", "bins", "overflow", "total", "count")

    def __init__(self, name: str, bin_width: int, num_bins: int) -> None:
        if bin_width <= 0:
            raise ConfigurationError(f"histogram {name!r} bin_width must be positive")
        if num_bins <= 0:
            raise ConfigurationError(f"histogram {name!r} num_bins must be positive")
        self.name = name
        self.bin_width = bin_width
        self.num_bins = num_bins
        self.bins = [0] * num_bins
        self.overflow = 0
        self.total = 0
        self.count = 0

    def record(self, value: float, weight: int = 1) -> None:
        """Record ``value`` with the given integer ``weight``."""
        if value < 0:
            raise ConfigurationError(f"histogram {self.name!r} cannot record negative value {value}")
        if weight < 0:
            raise ConfigurationError(f"histogram {self.name!r} weight must be non-negative")
        index = int(value // self.bin_width)
        if index >= self.num_bins:
            self.overflow += weight
        else:
            self.bins[index] += weight
        self.total += value * weight
        self.count += weight

    def mean(self) -> float:
        """Return the arithmetic mean of all recorded values (0.0 if empty)."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def fraction_below(self, threshold: float) -> float:
        """Return the fraction of recorded values strictly below ``threshold``.

        The fraction is computed from the binned representation, so it is
        exact only when ``threshold`` is a multiple of the bin width; this is
        how the paper's "91% within 30 cycles" figures are reported.
        """
        if self.count == 0:
            return 0.0
        full_bins = int(threshold // self.bin_width)
        covered = sum(self.bins[: min(full_bins, self.num_bins)])
        return covered / self.count

    def percentile_bin_upper_bound(self, percentile: float) -> int:
        """Return the smallest bin upper bound covering ``percentile`` of the mass.

        Used to reproduce the 95% / 99% coverage markers of Figure 1.  The
        returned value is expressed in the same units as recorded values.
        """
        if not 0.0 < percentile <= 1.0:
            raise ConfigurationError("percentile must lie in (0, 1]")
        if self.count == 0:
            return 0
        target = percentile * self.count
        running = 0
        for index, population in enumerate(self.bins):
            running += population
            if running >= target:
                return (index + 1) * self.bin_width
        return self.num_bins * self.bin_width

    def as_series(self) -> List[Tuple[int, int]]:
        """Return ``(bin_lower_bound, population)`` pairs including the overflow bin."""
        series = [(index * self.bin_width, population) for index, population in enumerate(self.bins)]
        series.append((self.num_bins * self.bin_width, self.overflow))
        return series

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, bin_width={self.bin_width}, "
            f"num_bins={self.num_bins}, count={self.count})"
        )


@dataclass
class StatsSnapshot:
    """An immutable snapshot of a registry, used in simulation results."""

    counters: Mapping[str, int]
    histograms: Mapping[str, List[Tuple[int, int]]]

    def get(self, name: str, default: int = 0) -> int:
        """Return a counter value by name, or ``default`` when absent."""
        return self.counters.get(name, default)


class StatsRegistry:
    """A flat namespace of counters and histograms for one simulation run.

    Counters are created lazily on first use so adding a new event to a
    structure never requires central registration.  Histograms must be
    declared explicitly because they carry binning parameters.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Return the counter called ``name``, creating it if necessary."""
        existing = self._counters.get(name)
        if existing is None:
            existing = Counter(name)
            self._counters[name] = existing
        return existing

    def bump(self, name: str, amount: int = 1) -> None:
        """Convenience: increment the counter called ``name`` by ``amount``."""
        self.counter(name).add(amount)

    def value(self, name: str) -> int:
        """Return the current value of a counter (0 if it was never touched)."""
        existing = self._counters.get(name)
        return existing.value if existing is not None else 0

    def histogram(self, name: str, bin_width: int = 1, num_bins: int = 64) -> Histogram:
        """Return the histogram called ``name``, creating it with the given shape.

        Re-requesting an existing histogram ignores the shape arguments; the
        first declaration wins.
        """
        existing = self._histograms.get(name)
        if existing is None:
            existing = Histogram(name, bin_width=bin_width, num_bins=num_bins)
            self._histograms[name] = existing
        return existing

    def counters(self) -> Iterator[Counter]:
        """Iterate over all counters in name order."""
        for name in sorted(self._counters):
            yield self._counters[name]

    def histograms(self) -> Iterator[Histogram]:
        """Iterate over all histograms in name order."""
        for name in sorted(self._histograms):
            yield self._histograms[name]

    def find_histogram(self, name: str) -> Optional[Histogram]:
        """Return the histogram called ``name`` if it exists, else ``None``."""
        return self._histograms.get(name)

    def snapshot(self) -> StatsSnapshot:
        """Return an immutable snapshot of every counter and histogram."""
        return StatsSnapshot(
            counters={name: counter.value for name, counter in self._counters.items()},
            histograms={name: histogram.as_series() for name, histogram in self._histograms.items()},
        )

    def merge(self, other: "StatsRegistry") -> None:
        """Add every counter of ``other`` into this registry.

        Histograms are not merged (they are per-run artifacts); attempting to
        merge registries that both define the same histogram raises to avoid
        silently discarding data.
        """
        for counter in other.counters():
            self.counter(counter.name).add(counter.value)
        for histogram in other.histograms():
            if histogram.name in self._histograms:
                raise ConfigurationError(
                    f"cannot merge registries that both define histogram {histogram.name!r}"
                )

    def as_dict(self) -> Dict[str, int]:
        """Return all counters as a plain ``{name: value}`` dictionary."""
        return {name: counter.value for name, counter in sorted(self._counters.items())}


@dataclass
class RatePer100M:
    """Helper that scales raw event counts to events per 100 million instructions.

    The paper reports Table 2 and Figures 8a / 10 per 100 million committed
    instructions; our synthetic runs are much shorter, so results are scaled
    linearly by the number of committed instructions.
    """

    committed_instructions: int
    scale_target: int = 100_000_000
    _factor: float = field(init=False)

    def __post_init__(self) -> None:
        if self.committed_instructions <= 0:
            raise ConfigurationError("committed_instructions must be positive")
        self._factor = self.scale_target / self.committed_instructions

    def scale(self, raw_count: float) -> float:
        """Return ``raw_count`` scaled to the per-100M-instruction rate."""
        return raw_count * self._factor

    def scale_millions(self, raw_count: float) -> float:
        """Return the per-100M rate expressed in millions (Table 2's unit)."""
        return self.scale(raw_count) / 1e6

"""Shared infrastructure for the ELSQ reproduction.

This package groups the pieces that every other subsystem relies on:

* :mod:`repro.common.errors` -- the exception hierarchy raised by the library.
* :mod:`repro.common.rng` -- deterministic random number helpers so that every
  experiment is reproducible from a single integer seed.
* :mod:`repro.common.stats` -- counters, histograms and the statistics
  registry used to account for every structure access the paper reports.
* :mod:`repro.common.config` -- validated configuration dataclasses mirroring
  Table 1 of the paper.
"""

from repro.common.errors import (
    ConfigurationError,
    ReproError,
    SimulationError,
    TraceError,
    WorkloadError,
)
from repro.common.rng import DeterministicRng, derive_seed
from repro.common.stats import Counter, Histogram, StatsRegistry

__all__ = [
    "ConfigurationError",
    "Counter",
    "DeterministicRng",
    "Histogram",
    "ReproError",
    "SimulationError",
    "StatsRegistry",
    "TraceError",
    "WorkloadError",
    "derive_seed",
]

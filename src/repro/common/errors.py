"""Exception hierarchy for the ELSQ reproduction library.

Every exception intentionally raised by the library derives from
:class:`ReproError` so that callers embedding the simulator can catch a single
base class.  More specific subclasses communicate *which* subsystem rejected
the request:

* :class:`ConfigurationError` -- an invalid or inconsistent configuration
  value (for example a cache whose size is not a multiple of its line size).
* :class:`WorkloadError` -- a workload generator was asked for something it
  cannot produce (negative instruction counts, probabilities outside [0, 1]).
* :class:`TraceError` -- a malformed instruction trace (bad operands, memory
  operation without an address, unknown serialised record).
* :class:`SimulationError` -- an internal inconsistency detected while a
  simulation was running (these indicate bugs or mis-use of the low level
  structures rather than bad user input).
* :class:`ServiceError` -- the simulation service (:mod:`repro.service`)
  rejected or failed a request; :class:`ServiceOverloadedError` is the
  admission-control subcase (HTTP 429, the job queue is full).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or internally inconsistent configuration value."""


class WorkloadError(ReproError, ValueError):
    """A workload generator received parameters it cannot honour."""


class TraceError(ReproError, ValueError):
    """An instruction trace is malformed or internally inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """An invariant of the timing model or a hardware structure was violated."""


class ServiceError(ReproError, RuntimeError):
    """The simulation service rejected or failed a request."""


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission because the job queue is full."""

"""Exception hierarchy for the ELSQ reproduction library.

Every exception intentionally raised by the library derives from
:class:`ReproError` so that callers embedding the simulator can catch a single
base class.  More specific subclasses communicate *which* subsystem rejected
the request:

* :class:`ConfigurationError` -- an invalid or inconsistent configuration
  value (for example a cache whose size is not a multiple of its line size).
* :class:`WorkloadError` -- a workload generator was asked for something it
  cannot produce (negative instruction counts, probabilities outside [0, 1]).
* :class:`TraceError` -- a malformed instruction trace (bad operands, memory
  operation without an address, unknown serialised record).
* :class:`SimulationError` -- an internal inconsistency detected while a
  simulation was running (these indicate bugs or mis-use of the low level
  structures rather than bad user input).
* :class:`ServiceError` -- the simulation service (:mod:`repro.service`)
  rejected or failed a request; :class:`ServiceOverloadedError` is the
  admission-control subcase (HTTP 429, a queue or tenant quota is full).

The service's **error taxonomy** also lives here (shared by the server and
the client SDK, which must agree on it): every error body carries a stable
machine-readable :class:`ErrorCode` so callers branch on ``code`` instead of
string-matching messages.
"""

from __future__ import annotations

import enum
from typing import Optional


class ErrorCode(str, enum.Enum):
    """Machine-readable error codes carried in every service error body.

    The code is the contract: messages are free to change wording, but the
    code a given failure maps to is stable.  ``ServiceClient`` raises
    :class:`ServiceOverloadedError` for the two admission codes and plain
    :class:`ServiceError` otherwise.
    """

    #: Malformed request: bad JSON, bad envelope, invalid parameters.
    BAD_REQUEST = "bad_request"
    #: The tenant requires an auth token and none (or a wrong one) was sent.
    UNAUTHORIZED = "unauthorized"
    #: Unknown endpoint, job id or cache key.
    NOT_FOUND = "not_found"
    #: Known endpoint, wrong HTTP method.
    METHOD_NOT_ALLOWED = "method_not_allowed"
    #: Global admission control: the server-wide queue is full.
    OVERLOADED = "overloaded"
    #: Per-tenant admission control: this tenant's quota is exhausted
    #: (other tenants may still be admitted).
    TENANT_QUOTA_EXCEEDED = "tenant_quota_exceeded"
    #: The job exceeded its configured wall-clock execution timeout.
    JOB_TIMEOUT = "job_timeout"
    #: Every retry of a retryable execution failure (worker crash) failed.
    JOB_RETRIES_EXHAUSTED = "job_retries_exhausted"
    #: The server is draining for shutdown and accepts no new submissions.
    DRAINING = "draining"
    #: The server failed while handling the request.
    INTERNAL = "internal"


#: The HTTP status each error code is served with.
HTTP_STATUS_FOR_CODE = {
    ErrorCode.BAD_REQUEST: 400,
    ErrorCode.UNAUTHORIZED: 401,
    ErrorCode.NOT_FOUND: 404,
    ErrorCode.METHOD_NOT_ALLOWED: 405,
    ErrorCode.OVERLOADED: 429,
    ErrorCode.TENANT_QUOTA_EXCEEDED: 429,
    ErrorCode.JOB_TIMEOUT: 500,
    ErrorCode.JOB_RETRIES_EXHAUSTED: 500,
    ErrorCode.DRAINING: 503,
    ErrorCode.INTERNAL: 500,
}


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid or internally inconsistent configuration value."""


class WorkloadError(ReproError, ValueError):
    """A workload generator received parameters it cannot honour."""


class TraceError(ReproError, ValueError):
    """An instruction trace is malformed or internally inconsistent."""


class SimulationError(ReproError, RuntimeError):
    """An invariant of the timing model or a hardware structure was violated."""


class ServiceError(ReproError, RuntimeError):
    """The simulation service rejected or failed a request."""


class LoadDriverError(ReproError, RuntimeError):
    """The load harness's client fleet failed outside the measurement contract.

    Raised when a client *process* dies without reporting its samples (a
    non-zero exit code): the stage's numbers would silently undercount the
    offered load, so the driver fails loudly instead.  Per-request failures
    under saturation are not errors -- they are measurements, recorded as
    ``ok=False`` samples.
    """


class WorkerCrashError(ServiceError):
    """A job's execution substrate died under it (worker process killed,
    pool broken) rather than the simulation itself failing.

    This is the **retryable** failure class: the job's inputs are fine, the
    machinery running it was lost, so the supervisor re-runs the job on a
    fresh runner with backoff.  Deterministic simulation errors
    (:class:`SimulationError`, :class:`ConfigurationError`, ...) are *not*
    retryable -- re-running identical inputs reproduces them, so they fail
    fast instead of burning retries.
    """


class JobTimeoutError(ServiceError):
    """A job exceeded the server's per-job wall-clock timeout.

    Carries :data:`ErrorCode.JOB_TIMEOUT`; not retried (a second attempt
    would very likely time out again and double the damage).
    """

    code = ErrorCode.JOB_TIMEOUT


class JobRetriesExhaustedError(ServiceError):
    """A retryable failure survived every allowed retry.

    Carries :data:`ErrorCode.JOB_RETRIES_EXHAUSTED` and chains the last
    underlying failure as ``__cause__``.
    """

    code = ErrorCode.JOB_RETRIES_EXHAUSTED


class JobNotFoundError(ServiceError):
    """A job id the server no longer (or never) knew about (HTTP 404).

    Distinct from plain :class:`ServiceError` so pollers can tell "the job
    was trimmed from the bounded history" apart from transport failures and
    fall back to the result cache (:meth:`ServiceClient.wait` does exactly
    this with the receipt's request key).
    """


class ServiceOverloadedError(ServiceError):
    """Admission control rejected a submission (queue or tenant quota full).

    Carries the structured fields the wire error body exposes, so callers
    can back off without parsing the message:

    * ``code`` -- :data:`ErrorCode.OVERLOADED` (server-wide queue full) or
      :data:`ErrorCode.TENANT_QUOTA_EXCEEDED` (this tenant's quota, other
      tenants unaffected);
    * ``tenant`` -- the tenant whose submission was rejected (``None`` when
      the rejection was global);
    * ``retry_after`` -- the server's backoff hint in seconds (the
      ``Retry-After`` header), ``None`` when the server sent no hint.
    """

    def __init__(
        self,
        message: str,
        *,
        code: ErrorCode = ErrorCode.OVERLOADED,
        tenant: Optional[str] = None,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = ErrorCode(code)
        self.tenant = tenant
        self.retry_after = retry_after

"""Per-phase wall-time accounting for the performance harness.

``repro bench`` attributes where a figure's wall time actually goes by
having the hot paths report how long each *phase* of a simulation took:

* ``generation`` -- synthesising workload instruction streams
  (:func:`repro.exp.runner._trace_for`),
* ``build``      -- constructing processor models from machine configs,
* ``warmup``     -- bringing cache state to its steady-state snapshot,
* ``drive``      -- the per-instruction simulation loop itself,
* ``dispatch``   -- parent-side parallel orchestration (pool map plus the
  shared-memory trace handoff).

This module is a thin compatibility shim over :mod:`repro.obs.spans`, which
owns the accumulator (and additionally records individual spans while a
profiling session is armed).  Worker processes accumulate into their own
copies and ship the per-task deltas back with each result; the parent
merges them (:func:`repro.obs.spans.merge_worker`), so parallel-mode
snapshots now include real worker-side phase data alongside the parent's
``dispatch`` orchestration time.  The accounting calls are O(1) dict
updates per *phase report* (a handful per simulation, never per
instruction), so they are noise next to the phases being measured.
"""

from __future__ import annotations

from typing import Dict

from repro.obs import spans as _spans


def add(phase: str, seconds: float) -> None:
    """Accumulate ``seconds`` of wall time under ``phase``."""
    _spans.add_phase(phase, seconds)


def snapshot() -> Dict[str, float]:
    """The accumulated seconds per phase (a copy, sorted by phase name)."""
    return _spans.phase_totals()


def reset() -> None:
    """Zero every phase (called by the bench harness between timed runs)."""
    _spans.reset_phases()

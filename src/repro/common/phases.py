"""Per-phase wall-time accounting for the performance harness.

``repro bench`` attributes where a figure's wall time actually goes by
having the hot paths report how long each *phase* of a simulation took:

* ``generation`` -- synthesising workload instruction streams
  (:func:`repro.exp.runner._trace_for`),
* ``build``      -- constructing processor models from machine configs,
* ``warmup``     -- bringing cache state to its steady-state snapshot,
* ``drive``      -- the per-instruction simulation loop itself,
* ``dispatch``   -- parent-side parallel orchestration (pool map plus the
  shared-memory trace handoff).

The accumulator is deliberately simple: a per-process dict of phase name to
seconds, reset by the measurement harness around each timed run.  Worker
processes accumulate into their own copies, which the parent never sees --
the parent-side snapshot therefore describes serial (inline) execution
fully, and parallel execution from the orchestrator's point of view, which
is exactly the split the bench artifact reports.  The two ``perf_counter``
calls per report are noise next to the phases being measured.
"""

from __future__ import annotations

from typing import Dict

_PHASES: Dict[str, float] = {}


def add(phase: str, seconds: float) -> None:
    """Accumulate ``seconds`` of wall time under ``phase``."""
    _PHASES[phase] = _PHASES.get(phase, 0.0) + seconds


def snapshot() -> Dict[str, float]:
    """The accumulated seconds per phase (a copy, sorted by phase name)."""
    return {name: _PHASES[name] for name in sorted(_PHASES)}


def reset() -> None:
    """Zero every phase (called by the bench harness between timed runs)."""
    _PHASES.clear()

"""The fault-injection registry: spec parsing and per-site decisions.

A **fault spec** is a small JSON document naming the sites to perturb and
how hard::

    {
      "seed": 1234,
      "kill_worker":  {"rate": 0.3, "max": 5},
      "drop_peer":    {"rate": 0.1},
      "delay_peer":   {"rate": 0.1, "seconds": 0.2},
      "corrupt_cache":{"rate": 0.2, "max": 3},
      "http_500":     {"rate": 0.05}
    }

Each site carries a ``rate`` (per-decision injection probability), an
optional ``max`` (lifetime cap on injections at that site) and, for
``delay_peer``, the delay in ``seconds``.  Unknown sites are rejected at
parse time so a typo cannot silently disable a fault.

**Determinism.** Every site draws from its own ``random.Random`` seeded
with ``(spec seed, site name)``, so a given spec produces the same
injection sequence per site across runs -- a chaos failure reproduces by
re-running with the same spec.  Decisions taken with a ``key`` (the job's
content address at the ``kill_worker`` site) additionally fire **at most
once per key**: the injected fault models a *transient* crash, so a
supervised retry of the same job must be allowed to succeed -- otherwise
an unlucky key could exhaust its retries against the injector itself and
the "zero lost jobs" contract would be unfalsifiable.

The instrumented sites are:

* ``kill_worker`` -- :class:`repro.service.jobs.JobManager` raises
  :class:`~repro.common.errors.WorkerCrashError` before executing a job,
  exercising the supervisor's retry path;
* ``drop_peer`` / ``delay_peer`` -- :func:`repro.service.shards.fetch_json`
  fails (``OSError``) or stalls before dialling a peer shard, exercising
  the suspect-peer exclusion;
* ``corrupt_cache`` -- :meth:`repro.exp.cache.ResultCache.put` truncates
  the entry it just wrote, exercising the corrupt-entry quarantine;
* ``http_500`` -- the server fails a request before dispatch, exercising
  client backoff and the load harness's error accounting.
"""

from __future__ import annotations

import json
import os
import random
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Set, Tuple

from repro.common.errors import ConfigurationError

#: Environment variable activating injection process-wide: a fault-spec
#: file path, or the spec JSON itself (detected by a leading ``{``).
FAULTS_ENV = "REPRO_FAULTS"

#: The injection sites a spec may name.
FAULT_SITES = ("kill_worker", "drop_peer", "delay_peer", "corrupt_cache", "http_500")

#: Per-site settings a spec may carry.
_SITE_FIELDS = {"rate", "max", "seconds"}


@dataclass(frozen=True)
class SiteSpec:
    """One site's injection settings."""

    rate: float = 0.0
    #: Lifetime cap on injections at this site (``None`` = unbounded).
    max: Optional[int] = None
    #: Injected delay (``delay_peer`` only).
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.max is not None and self.max < 0:
            raise ConfigurationError(f"fault max must be >= 0, got {self.max}")
        if self.seconds < 0.0:
            raise ConfigurationError(f"fault seconds must be >= 0, got {self.seconds}")


@dataclass(frozen=True)
class FaultSpec:
    """A parsed fault spec: the seed and the per-site settings."""

    seed: int = 0
    sites: Mapping[str, SiteSpec] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Any) -> "FaultSpec":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"expected a fault-spec mapping, got {type(data).__name__}"
            )
        unknown = set(data) - set(FAULT_SITES) - {"seed"}
        if unknown:
            raise ConfigurationError(
                f"unknown fault sites {sorted(unknown)} (one of {', '.join(FAULT_SITES)})"
            )
        sites: Dict[str, SiteSpec] = {}
        for site in FAULT_SITES:
            settings = data.get(site)
            if settings is None:
                continue
            if not isinstance(settings, Mapping):
                raise ConfigurationError(f"fault site {site!r} wants a settings mapping")
            bad = set(settings) - _SITE_FIELDS
            if bad:
                raise ConfigurationError(f"fault site {site!r}: unknown settings {sorted(bad)}")
            sites[site] = SiteSpec(
                rate=float(settings.get("rate", 0.0)),
                max=settings.get("max"),
                seconds=float(settings.get("seconds", 0.0)),
            )
        return cls(seed=int(data.get("seed", 0)), sites=sites)

    @classmethod
    def from_file(cls, path: str) -> "FaultSpec":
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as error:
            raise ConfigurationError(f"cannot read fault spec {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"fault spec {path} is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {"seed": self.seed}
        for site, spec in self.sites.items():
            entry: Dict[str, Any] = {"rate": spec.rate}
            if spec.max is not None:
                entry["max"] = spec.max
            if spec.seconds:
                entry["seconds"] = spec.seconds
            document[site] = entry
        return document


class FaultInjector:
    """The live registry the instrumented sites ask "should I fail here?".

    Thread-safe (sites fire from the event loop, worker threads and pool
    put() paths alike); decisions are deterministic per ``(seed, site)``.
    Injection counts are kept locally and mirrored into a
    ``repro_faults_injected_total{site}`` counter once :meth:`bind_metrics`
    attaches a registry (the server binds its own at startup).
    """

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._rngs: Dict[str, random.Random] = {
            site: random.Random(f"{spec.seed}:{site}") for site in spec.sites
        }
        self.counts: Dict[str, int] = {site: 0 for site in spec.sites}
        self._fired_keys: Set[Tuple[str, str]] = set()
        self._counter = None

    def bind_metrics(self, registry) -> None:
        """Mirror injection counts into ``registry`` from now on."""
        self._counter = registry.counter(
            "repro_faults_injected_total",
            "Faults injected by the chaos harness, by site",
            labelnames=("site",),
        )

    def should(self, site: str, key: Optional[str] = None) -> bool:
        """Decide one injection at ``site`` (see the module docstring).

        ``key`` scopes the decision: a given key is faulted at most once
        per site, so supervised retries of an injected crash can succeed.
        """
        spec = self.spec.sites.get(site)
        if spec is None or spec.rate <= 0.0:
            return False
        with self._lock:
            if key is not None and (site, key) in self._fired_keys:
                return False
            if spec.max is not None and self.counts[site] >= spec.max:
                return False
            if self._rngs[site].random() >= spec.rate:
                return False
            self.counts[site] += 1
            if key is not None:
                self._fired_keys.add((site, key))
        if self._counter is not None:
            self._counter.labels(site).inc()
        return True

    def peer_delay(self) -> float:
        """The delay to impose on this peer call (0.0 = none)."""
        if self.should("delay_peer"):
            return self.spec.sites["delay_peer"].seconds
        return 0.0


#: The process-global injector (``None`` = injection disabled).
_INJECTOR: Optional[FaultInjector] = None
_ENV_CHECKED = False


def get_injector() -> Optional[FaultInjector]:
    """The active injector, if any; lazily honours :data:`FAULTS_ENV`.

    The environment is consulted once per process: fault sites call this on
    hot paths, and a missing variable must stay a cheap check.
    """
    global _ENV_CHECKED
    if _INJECTOR is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        install_from_env()
    return _INJECTOR


def install(injector: Optional[FaultInjector]) -> None:
    """Install (or, with ``None``, remove) the process-global injector."""
    global _INJECTOR, _ENV_CHECKED
    _INJECTOR = injector
    _ENV_CHECKED = True


def uninstall() -> None:
    """Remove the injector and re-arm the environment check (for tests)."""
    global _INJECTOR, _ENV_CHECKED
    _INJECTOR = None
    _ENV_CHECKED = False


def install_from_env() -> Optional[FaultInjector]:
    """Install an injector from :data:`FAULTS_ENV`, when set.

    The variable carries either a fault-spec file path or the spec JSON
    inline (leading ``{``); an empty value means disabled.
    """
    value = os.environ.get(FAULTS_ENV, "").strip()
    if not value:
        return None
    if value.startswith("{"):
        try:
            spec = FaultSpec.from_dict(json.loads(value))
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"{FAULTS_ENV} carries invalid inline JSON: {error}"
            ) from None
    else:
        spec = FaultSpec.from_file(value)
    injector = FaultInjector(spec)
    install(injector)
    return injector

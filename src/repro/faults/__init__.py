"""Deterministic fault injection for chaos-testing the service stack.

The package exports the injection registry (:class:`FaultSpec`,
:class:`FaultInjector`) and the process-global accessor the instrumented
sites consult (:func:`get_injector`).  With no spec installed every site is
a single ``None`` check -- production pays nothing for the harness.

Activate injection with ``repro serve --faults FILE.json`` or by exporting
``REPRO_FAULTS`` (a file path, or the spec JSON inline); ``repro chaos``
drives the load harness against a fault-injected server and asserts the
fault-tolerance contract (zero lost jobs, bounded error rates).
"""

from repro.faults.injection import (
    FAULT_SITES,
    FaultInjector,
    FaultSpec,
    FAULTS_ENV,
    get_injector,
    install,
    install_from_env,
    uninstall,
)

__all__ = [
    "FAULT_SITES",
    "FAULTS_ENV",
    "FaultInjector",
    "FaultSpec",
    "get_injector",
    "install",
    "install_from_env",
    "uninstall",
]

"""The ``repro chaos`` harness: offered load, injected faults, invariants.

A chaos run self-serves a (sharded) server with fault injection active,
offers a fixed batch of content-addressed submissions from a thread fleet,
then asserts the fault-tolerance contract end to end:

* **zero lost jobs** -- every *accepted* submission reaches a terminal
  state within its budget (an injected worker crash is retried by the
  supervisor, never silently dropped);
* **bit-identical results** -- every completed payload equals a local
  single-process baseline of the same job (faults may slow the service
  down, never change its answers);
* **keys resolvable** -- after the run (and, by default, after a full
  SIGTERM + restart of the server) every completed key still resolves via
  ``GET /v1/results/{key}``; a key whose cache entry was quarantined by an
  injected corruption is *healed* by one idempotent resubmission;
* **journal replay** -- the restarted shards report
  ``repro_journal_replays_total >= 1``: the durable journal survived the
  restart and was folded back in;
* **bounded error rate** -- injected submission failures (HTTP 500s) stay
  under ``max_error_rate`` of the offered load.

Each submission is pinned to one shard port for both the POST and the
status polls, so a poll never depends on cross-shard proxying -- an
injected ``drop_peer`` fault must surface as a degraded *merge* (partial
stats), not as a false "lost job".  Determinism comes from the fault
spec's seed (see :mod:`repro.faults.injection`): a failing chaos run
reproduces by re-running with the same spec and seed.
"""

from __future__ import annotations

import json
import random
import shutil
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    JobNotFoundError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.common.serialize import to_jsonable
from repro.faults.injection import FaultSpec

#: Schema of the chaos artifact (additive changes bump it).
CHAOS_SCHEMA_VERSION = 1

#: The built-in fault spec (used when no ``--faults`` file is given):
#: worker kills on roughly a third of the jobs, a tenth of peer calls
#: dropped or delayed, a capped handful of submission 500s and cache
#: corruptions.  Caps keep the error budget bounded per *shard* (each
#: shard process runs its own injector over the same spec).
DEFAULT_FAULT_SPEC: Dict[str, Any] = {
    "seed": 42,
    "kill_worker": {"rate": 0.35, "max": 10},
    "drop_peer": {"rate": 0.10, "max": 20},
    "delay_peer": {"rate": 0.10, "seconds": 0.05, "max": 20},
    "http_500": {"rate": 0.10, "max": 2},
    "corrupt_cache": {"rate": 0.20, "max": 6},
}

#: How many times one submission retries an injected 500 before giving up.
SUBMIT_ATTEMPTS = 4


@dataclass(frozen=True)
class ChaosConfig:
    """Everything one ``repro chaos`` invocation needs."""

    shards: int = 2
    serve_workers: int = 2
    queue_limit: int = 32
    #: Jobs offered (all distinct content addresses).
    submissions: int = 24
    #: Concurrent submitter threads.
    clients: int = 4
    #: Trace length per submitted simulation.
    instructions: int = 1500
    seed: int = 42
    #: Per-submission budget: admission retries plus the completion wait.
    timeout: float = 60.0
    #: Fault-spec file; ``None`` uses :data:`DEFAULT_FAULT_SPEC`.
    faults: Optional[str] = None
    #: Allowed (errors / submissions) ratio.
    max_error_rate: float = 0.34
    #: SIGTERM + restart the server and re-verify every key afterwards.
    restart: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("--shards must be >= 1")
        if self.submissions <= 0:
            raise ConfigurationError("the run needs at least one submission")
        if self.clients <= 0:
            raise ConfigurationError("the fleet needs at least one client")
        if not (0.0 <= self.max_error_rate <= 1.0):
            raise ConfigurationError("--max-error-rate must be in [0, 1]")


def _jobs_for(config: ChaosConfig) -> List[Any]:
    """The offered batch: distinct seeds give distinct content addresses."""
    from repro.exp.runner import SimJob
    from repro.sim.configs import fmc_hash
    from repro.workloads.suite import quick_fp_suite

    members = quick_fp_suite().members
    return [
        SimJob(
            fmc_hash(),
            members[index % len(members)],
            config.instructions,
            config.seed + index,
        )
        for index in range(config.submissions)
    ]


def _offer(job: Any, url: str, config: ChaosConfig) -> Dict[str, Any]:
    """Submit one job to its pinned shard and wait for the outcome.

    A 429 is flow control (resubmitted inside the budget, honouring the
    server's hint); any other submission failure is an *error sample* and
    retried a bounded number of times.  Once accepted, a wait failure is
    classified by a final status probe: a terminal job is a failure, a
    still-queued or vanished one is **lost** -- the contract violation.
    """
    from repro.service.client import ServiceClient

    client = ServiceClient(url, timeout=min(config.timeout, 30.0))
    deadline = time.monotonic() + config.timeout
    outcome: Dict[str, Any] = {
        "key": job.key(),
        "url": url,
        "errors": 0,
        "accepted": False,
        "completed": False,
        "failed": False,
        "lost": False,
        "payload": None,
    }
    receipt = None
    attempt = 0
    while receipt is None:
        try:
            receipt = client.submit(cases=[job])
        except ServiceOverloadedError as error:
            hint = error.retry_after if error.retry_after else None
            delay = float(hint) if hint else random.uniform(0.1, 0.5)
            if time.monotonic() + delay >= deadline:
                outcome["errors"] += 1
                return outcome
            time.sleep(delay)
        except ServiceError:
            outcome["errors"] += 1
            attempt += 1
            if attempt >= SUBMIT_ATTEMPTS or time.monotonic() >= deadline:
                return outcome
            time.sleep(random.uniform(0.05, 0.25))
    outcome["accepted"] = True
    try:
        view = client.wait(
            receipt.job_id,
            timeout=max(1.0, deadline - time.monotonic()),
            request_key=receipt.request_key,
        )
    except ServiceError:
        outcome["errors"] += 1
        try:
            probe = client.status(receipt.job_id)
            terminal = probe["status"] in ("completed", "failed")
            outcome["failed"] = probe["status"] == "failed"
        except (JobNotFoundError, ServiceError):
            # Trimmed from history: done iff the result made it to the cache.
            try:
                terminal = client.result(job.key()) is not None
            except ServiceError:
                terminal = False
        outcome["lost"] = not terminal
        return outcome
    outcome["completed"] = True
    outcome["payload"] = view.get("result", {}).get(job.key())
    return outcome


def _resolve(job: Any, url: str, config: ChaosConfig) -> Tuple[bool, bool]:
    """Check one completed key resolves; heal a quarantined entry.

    Returns ``(resolvable, healed)``.  An unresolvable key (its cache entry
    was corrupted by injection and quarantined on read) gets one idempotent
    resubmission -- the at-most-once-per-key injector contract guarantees
    the rewrite lands clean -- and counts as healed when that succeeds.
    """
    from repro.service.client import ServiceClient

    client = ServiceClient(url, timeout=min(config.timeout, 30.0))
    try:
        if client.result(job.key()) is not None:
            return True, False
    except ServiceError:
        pass
    for _ in range(2):
        try:
            view = client.run(cases=[job], timeout=config.timeout)
        except ServiceError:
            continue
        if view.get("result", {}).get(job.key()) is not None:
            return True, True
    return False, False


def _baseline(job: Any) -> Any:
    """The job's local single-process ground truth, JSON-normalised."""
    from repro.exp.runner import run_job

    return json.loads(json.dumps(to_jsonable(run_job(job).to_dict())))


def _metric_total(document: Dict[str, Any], name: str) -> float:
    """Sum every sample of one metric family in a metrics JSON document."""
    for family in document.get("metrics", []):
        if family.get("name") == name:
            return sum(
                float(sample.get("value", 0.0))
                for sample in family.get("samples", [])
            )
    return 0.0


def _shard_metrics(urls: List[str], names: Tuple[str, ...]) -> Dict[str, float]:
    """Sum the named metrics over every shard's *local* document."""
    from repro.service.client import ServiceClient

    totals = {name: 0.0 for name in names}
    for url in urls:
        try:
            document = ServiceClient(url, timeout=10.0).metrics(scope="local")
        except ServiceError:
            continue
        for name in names:
            totals[name] += _metric_total(document, name)
    return totals


_METRIC_NAMES = (
    "repro_faults_injected_total",
    "repro_job_retries_total",
    "repro_journal_replays_total",
    "repro_peer_suspect",
)


def _restart_server(server: Any) -> None:
    """SIGTERM the server under test and bring it back on the same ports.

    The scratch directory (cache + journals) survives -- that persistence
    is exactly what the post-restart checks exercise.
    """
    process = server.process
    server.process = None
    process.terminate()
    try:
        process.wait(timeout=30.0)
    except subprocess.TimeoutExpired:  # pragma: no cover - drain wedged
        process.kill()
        process.wait(timeout=10.0)
    server.start()


def run_chaos(config: ChaosConfig, log=print) -> Tuple[bool, Dict[str, Any]]:
    """Run the whole chaos scenario; returns ``(ok, artifact)``."""
    from repro.load.bench import LoadBenchConfig, SelfServedServer

    if config.faults is not None:
        spec = FaultSpec.from_file(config.faults)
        spec_path = Path(config.faults)
        spec_dir: Optional[Path] = None
    else:
        spec = FaultSpec.from_dict(DEFAULT_FAULT_SPEC)
        spec_dir = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
        spec_path = spec_dir / "faults.json"
        spec_path.write_text(json.dumps(spec.to_dict(), sort_keys=True))
    server = SelfServedServer(
        LoadBenchConfig(
            shards=config.shards,
            serve_workers=config.serve_workers,
            queue_limit=config.queue_limit,
            timeout=config.timeout,
            seed=config.seed,
            faults=str(spec_path),
        )
    )
    log(
        f"[repro] chaos: starting fault-injected server: shards={config.shards}, "
        f"workers={config.serve_workers}, port={server.base_port}"
    )
    try:
        server.start()
        artifact = _run_scenario(config, spec, server, log)
    finally:
        server.stop()
        if spec_dir is not None:
            shutil.rmtree(spec_dir, ignore_errors=True)
    ok = all(check["ok"] for check in artifact["checks"].values())
    artifact["ok"] = ok
    return ok, artifact


def _run_scenario(
    config: ChaosConfig, spec: FaultSpec, server: Any, log
) -> Dict[str, Any]:
    from repro.service.client import ServiceClient

    jobs = _jobs_for(config)
    # Pin each job to one shard port for its whole lifetime (see module doc).
    urls = server.shard_urls
    targets = [urls[index % len(urls)] for index in range(len(jobs))]
    log(
        f"[repro] chaos: offering {len(jobs)} submissions from "
        f"{config.clients} clients over {len(urls)} shard(s)"
    )
    with ThreadPoolExecutor(max_workers=config.clients) as pool:
        outcomes = list(pool.map(_offer, jobs, targets, [config] * len(jobs)))
    # A few merged-stats reads: these fan out to peers, so drop/delay_peer
    # faults land on the suspect-peer accounting rather than the job path.
    for _ in range(4):
        try:
            ServiceClient(urls[0], timeout=10.0).stats()
        except ServiceError:
            pass
    accepted = [o for o in outcomes if o["accepted"]]
    completed = [o for o in outcomes if o["completed"]]
    lost = [o for o in outcomes if o["lost"]]
    failed = [o for o in outcomes if o["failed"]]
    errors = sum(o["errors"] for o in outcomes)
    error_rate = errors / len(jobs)
    log(
        f"[repro] chaos: {len(accepted)}/{len(jobs)} accepted, "
        f"{len(completed)} completed, {len(failed)} failed, "
        f"{len(lost)} lost, {errors} error samples"
    )

    by_key = {job.key(): job for job in jobs}
    mismatched: List[str] = []
    for outcome in completed:
        if outcome["payload"] != _baseline(by_key[outcome["key"]]):
            mismatched.append(outcome["key"])

    metrics_before = _shard_metrics(urls, _METRIC_NAMES)
    if config.restart:
        log("[repro] chaos: SIGTERM + restart of the server under test")
        _restart_server(server)
    metrics_after = _shard_metrics(urls, _METRIC_NAMES) if config.restart else {}

    unresolved: List[str] = []
    healed = 0
    for outcome in completed:
        resolvable, was_healed = _resolve(
            by_key[outcome["key"]], outcome["url"], config
        )
        if not resolvable:
            unresolved.append(outcome["key"])
        elif was_healed:
            healed += 1
    log(
        f"[repro] chaos: {len(completed) - len(unresolved)}/{len(completed)} "
        f"keys resolvable"
        + (" after restart" if config.restart else "")
        + (f" ({healed} healed by resubmission)" if healed else "")
    )

    try:
        stats_after = ServiceClient(urls[0], timeout=10.0).stats()
    except ServiceError:
        stats_after = None

    checks: Dict[str, Dict[str, Any]] = {
        "zero_lost_jobs": {
            "ok": not lost,
            "detail": f"{len(lost)} of {len(accepted)} accepted jobs lost",
        },
        "bit_identical": {
            "ok": not mismatched,
            "detail": (
                f"{len(mismatched)} of {len(completed)} completed payloads "
                "diverge from the local baseline"
            ),
        },
        "keys_resolvable": {
            "ok": not unresolved,
            "detail": (
                f"{len(unresolved)} of {len(completed)} completed keys "
                f"unresolvable ({healed} healed)"
            ),
        },
        "bounded_error_rate": {
            "ok": error_rate <= config.max_error_rate,
            "detail": (
                f"error rate {error_rate:.3f} vs <= "
                f"{config.max_error_rate:.3f} allowed"
            ),
        },
    }
    if config.restart:
        replays = metrics_after.get("repro_journal_replays_total", 0.0)
        checks["journal_replay"] = {
            "ok": replays >= 1.0,
            "detail": f"{replays:.0f} shard journal replays after restart",
        }

    from repro.exp.cli import _git_revision

    return {
        "artifact": "repro-chaos",
        "schema_version": CHAOS_SCHEMA_VERSION,
        "created_unix": time.time(),
        "python": sys.version.split()[0],
        "git_revision": _git_revision(),
        "config": asdict(config),
        "fault_spec": spec.to_dict(),
        "results": {
            "submissions": len(jobs),
            "accepted": len(accepted),
            "completed": len(completed),
            "failed": len(failed),
            "lost": len(lost),
            "errors": errors,
            "error_rate": error_rate,
            "healed": healed,
        },
        "server_metrics": {
            "before_restart": metrics_before,
            "after_restart": metrics_after,
        },
        "checks": checks,
        "stats_after": stats_after,
    }

"""Single source of the package version.

``repro.__version__``, ``setup.py`` and the ``repro version`` CLI command all
read this value; nothing else in the repo states a version number.  The file
is parsed textually by ``setup.py`` (no import of :mod:`repro` at build time),
so it must keep the simple ``__version__ = "X.Y.Z"`` form.
"""

__version__ = "0.2.0"

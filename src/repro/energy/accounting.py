"""Energy accounting: access counters x per-access energies.

:class:`EnergyModel` turns a :class:`~repro.uarch.result.CoreResult` into an
:class:`EnergyBreakdown`: for every structure the paper discusses in Section 6
(HL-LQ, HL-SQ, LL-LQ, LL-SQ, ERT, SSBF, SQM, data cache) it multiplies the
recorded access count by the per-access energy of a structure of that size and
kind.  The absolute joule numbers are estimates; the *ratios* -- for example
that the ERT contributes roughly 2% of the cache's read energy per access, or
that RSAC saves ERT and round-trip energy relative to SVW -- are the
reproduction targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.config import ELSQConfig, MemoryHierarchyConfig
from repro.energy.cacti import (
    StructureKind,
    access_energy_nj,
    cam_search_energy_nj,
    sram_read_energy_nj,
)
from repro.uarch.result import CoreResult

#: Bytes per load/store queue entry (address + data + control state).
_QUEUE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-structure dynamic energy of one simulation run, in nanojoules."""

    per_structure_nj: Dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        """Total dynamic energy across all accounted structures."""
        return sum(self.per_structure_nj.values())

    def fraction(self, structure: str) -> float:
        """Fraction of the total contributed by ``structure`` (0.0 if absent)."""
        total = self.total_nj
        if total <= 0:
            return 0.0
        return self.per_structure_nj.get(structure, 0.0) / total

    def nj(self, structure: str) -> float:
        """Energy of one structure in nanojoules (0.0 if absent)."""
        return self.per_structure_nj.get(structure, 0.0)


class EnergyModel:
    """Maps the Table 2 access counters of a result onto per-access energies."""

    def __init__(
        self,
        elsq_config: Optional[ELSQConfig] = None,
        hierarchy_config: Optional[MemoryHierarchyConfig] = None,
    ) -> None:
        self.elsq_config = elsq_config if elsq_config is not None else ELSQConfig()
        self.hierarchy_config = (
            hierarchy_config if hierarchy_config is not None else MemoryHierarchyConfig()
        )

    # ------------------------------------------------------------------
    # Per-access energies
    # ------------------------------------------------------------------

    def per_access_energies_nj(self) -> Dict[str, float]:
        """Return the per-access energy of every accounted structure."""
        cfg = self.elsq_config
        hierarchy = self.hierarchy_config
        ert_bytes = cfg.ert.storage_bytes(hierarchy.l1) // 2  # one of the two tables
        ssbf_bytes = cfg.svw.ssbf_entries * 2
        return {
            "hl_lq": cam_search_energy_nj(cfg.hl_load_entries, _QUEUE_ENTRY_BYTES),
            "hl_sq": cam_search_energy_nj(cfg.hl_store_entries, _QUEUE_ENTRY_BYTES),
            "ll_lq": cam_search_energy_nj(cfg.epoch_load_entries, _QUEUE_ENTRY_BYTES),
            "ll_sq": cam_search_energy_nj(cfg.epoch_store_entries, _QUEUE_ENTRY_BYTES),
            "ert": sram_read_energy_nj(max(1, ert_bytes)),
            "ssbf": sram_read_energy_nj(max(1, ssbf_bytes)),
            "sqm": cam_search_energy_nj(cfg.epoch_store_entries, _QUEUE_ENTRY_BYTES),
            "cache": access_energy_nj(StructureKind.CACHE, hierarchy.l1.size_bytes),
        }

    #: Mapping from structure name to the counter that records its accesses.
    _COUNTER_FOR_STRUCTURE = {
        "hl_lq": "hl_lq.searches",
        "hl_sq": "hl_sq.searches",
        "ll_lq": "ll_lq.searches",
        "ll_sq": "ll_sq.searches",
        "ert": "ert.lookups",
        "ssbf": "ssbf.lookups",
        "sqm": "sqm.accesses",
        "cache": "cache.accesses",
    }

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def breakdown(self, result: CoreResult) -> EnergyBreakdown:
        """Return the per-structure dynamic energy of ``result``."""
        energies = self.per_access_energies_nj()
        per_structure = {
            structure: energies[structure] * result.counter(counter_name)
            for structure, counter_name in self._COUNTER_FOR_STRUCTURE.items()
        }
        return EnergyBreakdown(per_structure_nj=per_structure)

    def ert_vs_cache_read_ratio(self) -> float:
        """Per-read energy of the ERT relative to the L1 (paper: about 2%)."""
        energies = self.per_access_energies_nj()
        return energies["ert"] / energies["cache"]

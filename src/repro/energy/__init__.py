"""Energy model (Section 6 of the paper).

The paper's energy argument combines two ingredients: per-access read/write
energies obtained from CACTI 4.2 at 70 nm (only two values are quoted: a 2 KB
ERT read costs 0.00195 nJ and a 32 KB L1 read costs 0.0958 nJ) and the
structure access counts of Table 2.  This package provides both halves:

* :mod:`repro.energy.cacti` -- a small analytical stand-in for CACTI anchored
  on the two published values, distinguishing RAM reads from the much more
  expensive CAM (associative) searches of the load/store queues.
* :mod:`repro.energy.accounting` -- combines per-access energies with the
  access counters of a simulation result into a per-structure and total
  energy breakdown.
"""

from repro.energy.accounting import EnergyBreakdown, EnergyModel
from repro.energy.cacti import StructureKind, access_energy_nj

__all__ = [
    "EnergyBreakdown",
    "EnergyModel",
    "StructureKind",
    "access_energy_nj",
]

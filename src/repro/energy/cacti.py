"""Per-access energy estimates anchored on the paper's CACTI 4.2 numbers.

The paper quotes exactly two CACTI values at 70 nm:

* reading the 2 KB ERT SRAM costs **0.00195 nJ**, and
* reading the 32 KB L1 data cache costs **0.0958 nJ** (so the ERT read is
  about 2% of an L1 read).

Everything else (HL/LL queue searches, SSBF reads, SQM reads) needs an
estimate in the same ballpark.  Rather than embedding CACTI, this module uses
a simple capacity-scaling law anchored on the two published points:

* RAM-style structures (ERT, SSBF, caches, SQM) scale as
  ``E = E_ref * (capacity / capacity_ref) ** 0.5`` from the nearest anchor,
  reflecting that bitline/wordline energy grows roughly with the square root
  of capacity for small SRAMs.
* CAM-style structures (associative load/store queue searches) pay a fixed
  per-entry match cost, so their search energy is linear in the number of
  entries searched.

The absolute values matter much less than the ratios, which is what the
paper's Section 6 argument rests on.
"""

from __future__ import annotations

import enum

from repro.common.errors import ConfigurationError

#: Published anchor: 2 KB SRAM (the ERT) read energy, nJ.
ERT_2KB_READ_NJ = 0.00195

#: Published anchor: 32 KB 4-way L1 data cache read energy, nJ.
L1_32KB_READ_NJ = 0.0958

#: Reference capacities for the two anchors, bytes.
_ERT_REF_BYTES = 2 * 1024
_L1_REF_BYTES = 32 * 1024

#: Per-entry energy of one associative (CAM) match, nJ.  Chosen so that a
#: 32-entry CAM search costs roughly the same as a small SRAM read, which is
#: the usual CACTI-era rule of thumb for LSQ-sized CAMs.
CAM_MATCH_PER_ENTRY_NJ = 0.0004


class StructureKind(enum.Enum):
    """How a structure is accessed, which determines its energy law."""

    SRAM = "sram"
    CAM = "cam"
    CACHE = "cache"


def sram_read_energy_nj(capacity_bytes: int) -> float:
    """Per-read energy of a small SRAM of the given capacity."""
    if capacity_bytes <= 0:
        raise ConfigurationError("capacity must be positive")
    return ERT_2KB_READ_NJ * (capacity_bytes / _ERT_REF_BYTES) ** 0.5


def cache_read_energy_nj(capacity_bytes: int) -> float:
    """Per-read energy of a cache of the given capacity."""
    if capacity_bytes <= 0:
        raise ConfigurationError("capacity must be positive")
    return L1_32KB_READ_NJ * (capacity_bytes / _L1_REF_BYTES) ** 0.5


def cam_search_energy_nj(entries: int, entry_bytes: int = 8) -> float:
    """Per-search energy of an associative queue with ``entries`` entries."""
    if entries <= 0:
        raise ConfigurationError("entries must be positive")
    if entry_bytes <= 0:
        raise ConfigurationError("entry_bytes must be positive")
    width_factor = max(1.0, entry_bytes / 8)
    return CAM_MATCH_PER_ENTRY_NJ * entries * width_factor


def access_energy_nj(kind: StructureKind, capacity_bytes: int, entries: int = 0) -> float:
    """Per-access energy for a structure of the given kind and size."""
    if kind is StructureKind.SRAM:
        return sram_read_energy_nj(capacity_bytes)
    if kind is StructureKind.CACHE:
        return cache_read_energy_nj(capacity_bytes)
    if entries <= 0:
        raise ConfigurationError("CAM structures need a positive entry count")
    entry_bytes = max(1, capacity_bytes // entries)
    return cam_search_energy_nj(entries, entry_bytes)

"""The metrics registry: counters, gauges and summaries with exposition.

Every layer of the stack reports into one :class:`MetricsRegistry` -- the
HTTP server (requests by endpoint/status), the job manager (queue depths,
per-tenant dispatch and rejections), and the result cache (hits, misses,
bytes).  A registry renders two ways:

* :meth:`MetricsRegistry.render_text` -- the Prometheus text exposition
  format (``# HELP`` / ``# TYPE`` lines, escaped labels, summaries as
  ``name{quantile="0.5"}`` samples plus ``_count`` / ``_sum``), served at
  ``GET /v1/metrics``;
* :meth:`MetricsRegistry.as_document` -- the same data as plain JSON for
  programmatic consumers (``GET /v1/metrics?format=json``).

Three metric kinds cover the service's needs, all pure dict operations off
the per-instruction hot path:

* :class:`Counter` -- monotonically increasing totals,
* :class:`Gauge` -- point-in-time values, either set directly or computed
  at render time from a callback (queue depth, uptime),
* :class:`Summary` -- a bounded :class:`Reservoir` of samples per label set
  with windowed percentiles, generalising the tenancy layer's latency
  window (which is now an alias of :class:`Reservoir`).

Registries are cheap and isolated: each server instance owns one, so two
in-process test servers never share counters.  :data:`REGISTRY` is the
process-wide default for code with no server to hang a registry on (the
CLI's result cache).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigurationError

#: Default bounded-reservoir size for summary samples (newest kept).
RESERVOIR_LIMIT = 1024

#: The quantiles a summary exposes in its text exposition and snapshots.
SUMMARY_QUANTILES = (0.50, 0.95, 0.99)


class Reservoir:
    """A bounded reservoir of samples with percentile summaries.

    Lifetime ``count`` / ``total`` never shrink; percentiles are computed
    over the retained window (the newest ``limit`` samples).  Two
    percentile flavours are exposed: :meth:`percentile` uses nearest-rank
    selection (the stats wire format's historical semantics) and
    :meth:`quantile` uses inclusive linear interpolation, matching
    ``statistics.quantiles(..., method="inclusive")``.
    """

    __slots__ = ("_samples", "count", "total")

    def __init__(self, limit: int = RESERVOIR_LIMIT) -> None:
        self._samples: Deque[float] = deque(maxlen=limit)
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        self._samples.append(value)
        self.count += 1
        self.total += value

    #: Prometheus-style alias so a summary child reads naturally.
    observe = record

    def percentile(self, quantile: float) -> float:
        """Nearest-rank percentile over the retained window (0.0 if empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(1, -(-int(quantile * 100) * len(ordered) // 100))  # ceil
        return ordered[min(rank, len(ordered)) - 1]

    def quantile(self, q: float) -> float:
        """Linearly interpolated quantile (inclusive method, 0.0 if empty).

        For ``n`` retained samples the quantile sits at position
        ``q * (n - 1)`` of the sorted window, interpolating between the two
        straddling samples -- the same estimator as
        ``statistics.quantiles(samples, method="inclusive")``.
        """
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def snapshot(self) -> Dict[str, float]:
        """The wire form: lifetime count/mean plus windowed percentiles."""
        return {
            "count": self.count,
            "mean": (self.total / self.count) if self.count else 0.0,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "max": max(self._samples) if self._samples else 0.0,
        }


class _CounterChild:
    """One labelled counter series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(f"counters only go up (inc by {amount})")
        self.value += amount


class _GaugeChild:
    """One labelled gauge series."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class MetricFamily:
    """One named metric and its children (one child per label-value set).

    A zero-label family has exactly one child, and the child's methods
    (``inc`` / ``set`` / ``record``) are available on the family itself so
    call sites need no empty ``labels()`` hop.
    """

    kind = "untyped"

    def __init__(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> None:
        _validate_metric_name(name)
        self.name = name
        self.help = help_text
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            _validate_metric_name(label)
        self._children: Dict[Tuple[str, ...], Any] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _make_child(self) -> Any:
        raise NotImplementedError

    def labels(self, *values: Any, **kwargs: Any) -> Any:
        """The child for one label-value set, created on first use."""
        if values and kwargs:
            raise ConfigurationError("pass label values positionally or by name, not both")
        if kwargs:
            try:
                values = tuple(str(kwargs.pop(label)) for label in self.labelnames)
            except KeyError as error:
                raise ConfigurationError(
                    f"metric {self.name!r} is missing label {error.args[0]!r}"
                ) from None
            if kwargs:
                raise ConfigurationError(
                    f"metric {self.name!r} has no labels {sorted(kwargs)}"
                )
        else:
            values = tuple(str(value) for value in values)
        if len(values) != len(self.labelnames):
            raise ConfigurationError(
                f"metric {self.name!r} takes {len(self.labelnames)} label values "
                f"({', '.join(self.labelnames)}), got {len(values)}"
            )
        child = self._children.get(values)
        if child is None:
            child = self._make_child()
            self._children[values] = child
        return child

    def children(self) -> List[Tuple[Tuple[str, ...], Any]]:
        """Every ``(label values, child)`` pair, sorted for stable output."""
        return sorted(self._children.items())

    # -- zero-label convenience passthrough ----------------------------

    def _sole_child(self) -> Any:
        if self.labelnames:
            raise ConfigurationError(
                f"metric {self.name!r} has labels {self.labelnames}; call .labels() first"
            )
        return self._children[()]


class Counter(MetricFamily):
    """A monotonically increasing total."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    @property
    def value(self) -> float:
        return self._sole_child().value


class Gauge(MetricFamily):
    """A point-in-time value, set directly or computed at render time."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> None:
        super().__init__(name, help_text, labelnames)
        self._callback: Optional[Callable[[], float]] = None

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set_function(self, callback: Callable[[], float]) -> "Gauge":
        """Compute this (zero-label) gauge's value lazily at render time."""
        self._sole_child()  # raises on labelled families
        self._callback = callback
        return self

    def refresh(self) -> None:
        if self._callback is not None:
            self._children[()].set(float(self._callback()))

    def set(self, value: float) -> None:
        self._sole_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._sole_child().inc(amount)

    @property
    def value(self) -> float:
        self.refresh()
        return self._sole_child().value


class Summary(MetricFamily):
    """A bounded reservoir of samples per label set, with percentiles."""

    kind = "summary"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        limit: int = RESERVOIR_LIMIT,
    ) -> None:
        self._limit = limit
        super().__init__(name, help_text, labelnames)

    def _make_child(self) -> Reservoir:
        return Reservoir(limit=self._limit)

    def record(self, value: float) -> None:
        self._sole_child().record(value)

    observe = record


class MetricsRegistry:
    """A named collection of metric families with get-or-create semantics.

    Registering the same name twice returns the existing family when the
    kind, help text and label names agree, and raises otherwise -- two call
    sites silently disagreeing about a metric's shape is always a bug.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _register(self, cls, name: str, help_text: str, labelnames, **kwargs) -> Any:
        existing = self._families.get(name)
        if existing is not None:
            if (
                type(existing) is not cls
                or existing.labelnames != tuple(labelnames)
                or existing.help != help_text
            ):
                raise ConfigurationError(
                    f"metric {name!r} is already registered as a {existing.kind} "
                    f"with labels {existing.labelnames}"
                )
            return existing
        family = cls(name, help_text, labelnames, **kwargs)
        self._families[name] = family
        return family

    def counter(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> Counter:
        return self._register(Counter, name, help_text, labelnames)

    def gauge(self, name: str, help_text: str, labelnames: Iterable[str] = ()) -> Gauge:
        return self._register(Gauge, name, help_text, labelnames)

    def summary(
        self,
        name: str,
        help_text: str,
        labelnames: Iterable[str] = (),
        limit: int = RESERVOIR_LIMIT,
    ) -> Summary:
        return self._register(Summary, name, help_text, labelnames, limit=limit)

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    # -- exposition ----------------------------------------------------

    def render_text(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        for family in self.families():
            if isinstance(family, Gauge):
                family.refresh()
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.children():
                labels = list(zip(family.labelnames, values))
                if isinstance(child, Reservoir):
                    for q in SUMMARY_QUANTILES:
                        quantiled = labels + [("quantile", _format_value(q))]
                        lines.append(
                            f"{family.name}{_render_labels(quantiled)} "
                            f"{_format_value(child.quantile(q))}"
                        )
                    lines.append(
                        f"{family.name}_count{_render_labels(labels)} {child.count}"
                    )
                    lines.append(
                        f"{family.name}_sum{_render_labels(labels)} "
                        f"{_format_value(child.total)}"
                    )
                else:
                    lines.append(
                        f"{family.name}{_render_labels(labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def as_document(self) -> Dict[str, Any]:
        """The registry as plain JSON (``GET /v1/metrics?format=json``)."""
        metrics: List[Dict[str, Any]] = []
        for family in self.families():
            if isinstance(family, Gauge):
                family.refresh()
            samples: List[Dict[str, Any]] = []
            for values, child in family.children():
                labels = dict(zip(family.labelnames, values))
                if isinstance(child, Reservoir):
                    samples.append({"labels": labels, **child.snapshot()})
                else:
                    samples.append({"labels": labels, "value": child.value})
            metrics.append(
                {
                    "name": family.name,
                    "type": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
            )
        return {"metrics": metrics}


def _validate_metric_name(name: str) -> None:
    if not name or not all(c.isalnum() or c in "_:" for c in name) or name[0].isdigit():
        raise ConfigurationError(f"invalid metric/label name {name!r}")


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: List[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    as_int = int(value)
    if value == as_int and abs(value) < 1e15:
        return str(as_int)
    return repr(float(value))


#: The process-wide default registry, for code with no server-owned registry
#: in reach (the CLI's result cache).  Server instances create their own so
#: in-process test servers stay isolated.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return REGISTRY

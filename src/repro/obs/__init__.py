"""End-to-end observability: metrics, tracing, spans and structured logs.

The platform's telemetry layer, threaded through every other package:

* :mod:`repro.obs.metrics` -- :class:`~repro.obs.metrics.MetricsRegistry`,
  process- or server-scoped counters/gauges/summaries with Prometheus text
  exposition (``GET /v1/metrics``) and a JSON form.
* :mod:`repro.obs.tracing` -- request-scoped trace IDs
  (``X-Repro-Trace-Id``), minted by the client, propagated through
  admission, scheduling and dispatch, echoed in every response and log line.
* :mod:`repro.obs.spans` -- span-level profiling generalising the old
  per-phase accounting; worker processes ship their spans and phase deltas
  back to the parent, and ``repro profile`` exports the merged timeline as
  Chrome trace-event JSON (Perfetto-loadable).
* :mod:`repro.obs.logs` -- stdlib-``logging`` JSON/text formatters with
  automatic trace-ID injection (``repro serve --log-level/--log-json``).

See ``docs/USAGE.md``, section "Observability".
"""

from repro.obs.logs import JsonLogFormatter, configure_logging, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    Reservoir,
    Summary,
    get_registry,
)
from repro.obs.tracing import (
    TRACE_ID_HEADER,
    current_trace_id,
    ensure_trace_id,
    new_trace_id,
    valid_trace_id,
)

__all__ = [
    "Counter",
    "Gauge",
    "JsonLogFormatter",
    "MetricsRegistry",
    "Reservoir",
    "Summary",
    "TRACE_ID_HEADER",
    "configure_logging",
    "current_trace_id",
    "ensure_trace_id",
    "get_logger",
    "get_registry",
    "new_trace_id",
    "valid_trace_id",
]

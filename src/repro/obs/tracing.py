"""Request-scoped trace IDs: minting, validation and context propagation.

A trace ID is a short opaque token minted once per logical request (by
:class:`~repro.service.client.ServiceClient` on submission, or by the server
for clients that send none) and carried everywhere that request goes: the
``X-Repro-Trace-Id`` HTTP header, the v2 wire envelope's ``trace_id`` field,
the job state, every structured log line and every response.  Correlating a
client-side failure with the server-side log lines that produced it is then
a single grep.

The *current* trace ID rides a :mod:`contextvars` context variable, so
concurrently handled requests on one event loop never see each other's IDs,
and log formatters can pick the ID up without threading it through every
call signature.
"""

from __future__ import annotations

import contextvars
import re
import uuid
from typing import Optional

#: The header carrying the trace ID in both directions.
TRACE_ID_HEADER = "X-Repro-Trace-Id"

#: Accepted trace-ID shape.  Anything else (too long, control characters,
#: header-splitting attempts) is discarded and replaced by a fresh ID --
#: the value is echoed into response headers and logs, so it must be tame.
_TRACE_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._\-]{0,127}\Z")

_CURRENT: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_trace_id", default=None
)


def new_trace_id() -> str:
    """Mint a fresh trace ID (a 32-hex-digit UUID4)."""
    return uuid.uuid4().hex


def valid_trace_id(candidate: object) -> bool:
    """Whether ``candidate`` is a well-formed trace ID."""
    return isinstance(candidate, str) and _TRACE_ID_PATTERN.match(candidate) is not None


def ensure_trace_id(candidate: object = None) -> str:
    """Return ``candidate`` when it is a valid trace ID, else mint a new one."""
    if valid_trace_id(candidate):
        return candidate  # type: ignore[return-value]
    return new_trace_id()


def current_trace_id() -> Optional[str]:
    """The trace ID bound to the current context, or ``None``."""
    return _CURRENT.get()


def set_trace_id(trace_id: Optional[str]) -> "contextvars.Token":
    """Bind ``trace_id`` to the current context; returns the reset token."""
    return _CURRENT.set(trace_id)


def reset_trace_id(token: "contextvars.Token") -> None:
    """Restore the context to its state before the matching :func:`set_trace_id`."""
    _CURRENT.reset(token)

"""Span-level profiling: nestable timed spans plus per-phase totals.

This module generalises the old ``repro.common.phases`` accumulator (which
is now a thin shim over it).  Two views of the same instrumentation coexist:

* **Phase totals** -- ``{phase name: seconds}``, always accumulated.  The
  hot paths report into them via :func:`add_phase` (through the
  ``phases`` shim) and the bench harness snapshots them per timed run.
  Worker processes return their per-task deltas to the parent, which merges
  them with :func:`merge_worker` -- closing the historical parallel-mode
  blind spot where worker phase data was simply lost.

* **The span log** -- individual timed events (name, wall-clock start,
  duration, pid/tid, category, args), recorded only while
  :func:`start_recording` is armed so a long-lived service pays nothing
  for instrumentation it is not exporting.  ``repro profile`` arms
  recording around one figure run and exports the log as Chrome
  trace-event JSON (:func:`to_chrome_trace`), loadable in Perfetto or
  ``chrome://tracing``.

Spans use ``time.time()`` (wall clock) for their start stamps deliberately:
``perf_counter`` epochs differ across processes, and worker spans must land
on the same timeline as the parent's.  Durations are measured with the same
clock over short intervals, where its resolution is ample next to the
simulation phases being measured.

All state is per-process (workers accumulate their own and ship deltas
back); within a process the GIL makes the append/accumulate operations safe
from the service's worker threads.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Mapping, Optional

#: Hard cap on retained spans; beyond it new spans are counted as dropped
#: rather than recorded, bounding memory during runaway recordings.
SPAN_LIMIT = 100_000

_SPANS: List[Dict[str, Any]] = []
_PHASE_TOTALS: Dict[str, float] = {}
_RECORDING = False
_DROPPED = 0


def recording() -> bool:
    """Whether the span log is currently armed."""
    return _RECORDING


def set_recording(armed: bool) -> None:
    """Arm or disarm the span log (phase totals accumulate regardless)."""
    global _RECORDING
    _RECORDING = bool(armed)


def start_recording(clear: bool = True) -> None:
    """Arm the span log, optionally clearing previously recorded spans."""
    global _DROPPED
    if clear:
        _SPANS.clear()
        _DROPPED = 0
    set_recording(True)


def stop_recording() -> None:
    """Disarm the span log (recorded spans stay until :func:`reset`)."""
    set_recording(False)


def record(
    name: str,
    start: float,
    duration: float,
    *,
    category: str = "span",
    args: Optional[Mapping[str, Any]] = None,
) -> None:
    """Append one completed span to the log (no-op unless recording).

    ``start`` is a ``time.time()`` wall-clock stamp; ``duration`` is in
    seconds.  The recording process and thread are stamped automatically.
    """
    global _DROPPED
    if not _RECORDING:
        return
    if len(_SPANS) >= SPAN_LIMIT:
        _DROPPED += 1
        return
    _SPANS.append(
        {
            "name": name,
            "category": category,
            "start": start,
            "duration": duration,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "args": dict(args) if args else {},
        }
    )


@contextlib.contextmanager
def span(
    name: str, *, category: str = "span", args: Optional[Mapping[str, Any]] = None
) -> Iterator[None]:
    """Time a block as one span (recorded on exit, exceptions included)."""
    started = time.time()
    try:
        yield
    finally:
        record(name, started, time.time() - started, category=category, args=args)


def add_phase(name: str, seconds: float) -> None:
    """Accumulate ``seconds`` under phase ``name`` (and log a span when armed)."""
    _PHASE_TOTALS[name] = _PHASE_TOTALS.get(name, 0.0) + seconds
    if _RECORDING:
        record(name, time.time() - seconds, seconds, category="phase")


def phase_totals() -> Dict[str, float]:
    """The accumulated seconds per phase (a copy, sorted by phase name)."""
    return {name: _PHASE_TOTALS[name] for name in sorted(_PHASE_TOTALS)}


def reset_phases() -> None:
    """Zero every phase total (the bench harness, between timed runs)."""
    _PHASE_TOTALS.clear()


def snapshot() -> List[Dict[str, Any]]:
    """Copies of every recorded span, in recording order."""
    return [dict(entry) for entry in _SPANS]


def span_count() -> int:
    """How many spans the log currently holds."""
    return len(_SPANS)


def dropped() -> int:
    """How many spans were discarded after the log filled up."""
    return _DROPPED


def drain_after(mark: int) -> List[Dict[str, Any]]:
    """Remove and return every span recorded after position ``mark``.

    Pool workers bracket each task with ``span_count()`` / ``drain_after``
    so the task's spans ride back to the parent with its result instead of
    accumulating in the (possibly long-lived) worker process.
    """
    drained = [dict(entry) for entry in _SPANS[mark:]]
    del _SPANS[mark:]
    return drained


def merge_worker(observations: Optional[Mapping[str, Any]]) -> None:
    """Fold one worker task's observations into this process.

    ``observations`` is the dict a pool worker returns alongside its result:
    ``{"pid": ..., "phases": {name: seconds}, "spans": [...]}``.  Phase
    deltas are merged into the totals unconditionally (this is what makes
    parallel bench artifacts carry real worker phase breakdowns); the
    worker's spans -- already stamped with the worker's pid -- extend the
    span log only while recording is armed.
    """
    global _DROPPED
    if not observations:
        return
    for name, seconds in (observations.get("phases") or {}).items():
        _PHASE_TOTALS[name] = _PHASE_TOTALS.get(name, 0.0) + seconds
    if _RECORDING:
        for entry in observations.get("spans") or ():
            if len(_SPANS) >= SPAN_LIMIT:
                _DROPPED += 1
                continue
            _SPANS.append(dict(entry))


def reset() -> None:
    """Clear the span log, the phase totals and the dropped counter."""
    global _DROPPED
    _SPANS.clear()
    _PHASE_TOTALS.clear()
    _DROPPED = 0


def to_chrome_trace(
    spans: List[Mapping[str, Any]], metadata: Optional[Mapping[str, Any]] = None
) -> Dict[str, Any]:
    """Render spans as a Chrome trace-event JSON document.

    Every span becomes one complete event (``"ph": "X"``) with microsecond
    ``ts`` / ``dur`` normalised to the earliest span's start, plus one
    process-name metadata event (``"ph": "M"``) per participating pid so
    Perfetto labels worker processes distinctly.  Load the written file in
    https://ui.perfetto.dev or ``chrome://tracing``.
    """
    base = min((entry["start"] for entry in spans), default=0.0)
    events: List[Dict[str, Any]] = []
    pids = sorted({int(entry["pid"]) for entry in spans})
    for pid in pids:
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"repro pid {pid}"},
            }
        )
    for entry in spans:
        events.append(
            {
                "name": entry["name"],
                "cat": entry.get("category", "span"),
                "ph": "X",
                "ts": (entry["start"] - base) * 1e6,
                "dur": max(0.0, entry["duration"]) * 1e6,
                "pid": int(entry["pid"]),
                "tid": int(entry["tid"]),
                "args": dict(entry.get("args") or {}),
            }
        )
    document: Dict[str, Any] = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metadata:
        document["otherData"] = dict(metadata)
    return document

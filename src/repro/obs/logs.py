"""Structured logging: stdlib ``logging`` with trace-ID injection.

The service logs through the ``repro`` logger hierarchy
(:func:`get_logger`), and :func:`configure_logging` installs exactly one
stream handler on its root -- either the human-readable text format or
one-JSON-object-per-line (``repro serve --log-json``).  Both formatters
inject the current request's trace ID automatically: an explicit
``extra={"trace_id": ...}`` on the log call wins, else the contextvar bound
by :mod:`repro.obs.tracing` is consulted, so every log line a request
produces carries that request's ID with no plumbing at the call sites.

JSON lines carry ``ts`` (unix seconds), ``level``, ``logger``, ``message``,
``trace_id`` (when one is bound) and any extra fields passed via
``extra=``; exceptions append a ``exc_info`` traceback string.  Keys are
sorted, so the output is diff- and grep-stable.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO, Any, Dict, Optional

from repro.obs.tracing import current_trace_id

#: The root of the package's logger hierarchy.
ROOT_LOGGER = "repro"

#: Accepted ``--log-level`` names.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: LogRecord attributes that are plumbing, not user-supplied extras.
_RESERVED_RECORD_FIELDS = frozenset(
    vars(logging.LogRecord("", 0, "", 0, "", (), None))
) | {"message", "asctime", "taskName", "trace_id"}


def _record_trace_id(record: logging.LogRecord) -> Optional[str]:
    explicit = getattr(record, "trace_id", None)
    return explicit if explicit is not None else current_trace_id()


def _record_extras(record: logging.LogRecord) -> Dict[str, Any]:
    return {
        key: value
        for key, value in vars(record).items()
        if key not in _RESERVED_RECORD_FIELDS and not key.startswith("_")
    }


class JsonLogFormatter(logging.Formatter):
    """One JSON object per line, with the trace ID injected."""

    def format(self, record: logging.LogRecord) -> str:
        document: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            document["trace_id"] = trace_id
        document.update(_record_extras(record))
        if record.exc_info:
            document["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(document, sort_keys=True, default=str)


class TextLogFormatter(logging.Formatter):
    """The human-readable format, with the trace ID as a suffix field."""

    def __init__(self) -> None:
        super().__init__("%(asctime)s %(levelname)-7s %(name)s: %(message)s")

    def format(self, record: logging.LogRecord) -> str:
        line = super().format(record)
        trace_id = _record_trace_id(record)
        if trace_id is not None:
            line += f" trace_id={trace_id}"
        return line


def configure_logging(
    level: str = "info", json_format: bool = False, stream: Optional[IO[str]] = None
) -> logging.Logger:
    """Install the package's log handler (idempotent; replaces its own).

    Only handlers this function installed are replaced, so an embedding
    application's logging configuration is never disturbed.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r} (choose from {LOG_LEVELS})")
    logger.setLevel(getattr(logging, level.upper()))
    for handler in [h for h in logger.handlers if getattr(h, "_repro_obs", False)]:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter() if json_format else TextLogFormatter())
    handler._repro_obs = True  # type: ignore[attr-defined]
    logger.addHandler(handler)
    logger.propagate = False
    return logger


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` hierarchy (``get_logger("service")``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")

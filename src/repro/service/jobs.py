"""The job queue: coalescing, admission control and the worker pool.

:class:`JobManager` owns the server's execution state:

* an in-memory **job store** (``job_id -> JobState``) with a bounded history
  of finished jobs,
* the **coalescing index** -- while a request is queued or running, its
  content address (:meth:`repro.exp.request.JobRequest.key`) maps to the
  live job, so an identical concurrent submission returns the same job
  instead of executing twice,
* a bounded **admission queue** -- when it is full, :meth:`submit` raises
  :class:`~repro.common.errors.ServiceOverloadedError` (HTTP 429), and
* a **worker pool**: ``workers`` asyncio tasks, each draining the queue and
  running the blocking simulation on a daemon thread so the event loop stays
  responsive.  Daemon (rather than executor) threads matter for shutdown: a
  ``concurrent.futures`` pool's non-daemon threads are joined at interpreter
  exit, so Ctrl-C on ``repro serve`` would hang until a running ``--full``
  campaign finished; daemon threads let the process exit promptly.

Every execution builds a fresh :class:`~repro.exp.runner.ExperimentRunner`
over the *shared* :class:`~repro.exp.cache.ResultCache`, which is what makes
a re-submission after completion finish with zero simulations: the runner
satisfies every job from the cache (atomic writes make the directory safe to
share between workers).  All submit/complete bookkeeping happens on the
event-loop thread; worker threads only touch their own job's runner.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import re
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ServiceOverloadedError
from repro.common.serialize import to_jsonable
from repro.exp.cache import ResultCache
from repro.exp.request import JobRequest
from repro.exp.runner import ExperimentRunner
from repro.sim.experiments import campaign_context, experiment_by_name


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobState:
    """Everything the server knows about one submitted job."""

    job_id: str
    request: JobRequest
    key: str
    submitted_at: float
    status: JobStatus = JobStatus.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    #: How many later identical submissions were folded into this job.
    coalesced_submissions: int = 0
    #: The runner executing this job (progress counters), set by the worker.
    runner: Optional[ExperimentRunner] = field(default=None, repr=False)

    def view(self, include_result: bool = True) -> Dict[str, Any]:
        """The job's wire status document (``GET /v1/jobs/{id}``)."""
        runner = self.runner
        elapsed = None
        if self.started_at is not None:
            elapsed = (self.finished_at or time.time()) - self.started_at
        document: Dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status.value,
            "request_key": self.key,
            "figure": self.request.figure,
            "case_count": len(self.request.cases),
            "instructions": self.request.instructions,
            "seed": self.request.seed,
            "full": self.request.full,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": elapsed,
            "coalesced_submissions": self.coalesced_submissions,
            "progress": {
                "executed_jobs": runner.executed_jobs if runner is not None else 0,
                "cache_hits": runner.cache_hits if runner is not None else 0,
            },
            "error": self.error,
        }
        if include_result and self.status is JobStatus.COMPLETED:
            document["result"] = self.result
        return document


class JobManager:
    """Job store + coalescing index + admission queue + worker pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        sim_jobs: int = 1,
        queue_limit: int = 8,
        history_limit: int = 256,
    ) -> None:
        self.cache = cache
        self.workers = max(1, workers)
        self.sim_jobs = max(1, sim_jobs)
        self.queue_limit = max(1, queue_limit)
        self.history_limit = max(1, history_limit)
        self.jobs: Dict[str, JobState] = {}
        self._inflight: Dict[str, str] = {}
        self._queue: "asyncio.Queue[JobState]" = asyncio.Queue(maxsize=self.queue_limit)
        self._worker_tasks: List[asyncio.Task] = []
        self._counter = itertools.count(1)
        self.started_at = time.time()
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
        }
        #: Test hook: called (in the worker thread) just before execution.
        self.pre_execute: Optional[Callable[[JobState], None]] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-worker-{index}")
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel the worker tasks (their daemon threads die with the process)."""
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []

    # -- submission (event-loop thread) --------------------------------

    def submit(self, request: JobRequest) -> Tuple[JobState, bool]:
        """Admit a request; returns ``(job, coalesced)``.

        An identical in-flight request (same content address, still queued or
        running) is coalesced: the existing job is returned and nothing is
        enqueued.  A full queue raises :class:`ServiceOverloadedError`.
        """
        request = request.normalized()
        key = request.key()
        existing_id = self._inflight.get(key)
        if existing_id is not None:
            state = self.jobs[existing_id]
            state.coalesced_submissions += 1
            self.stats["coalesced"] += 1
            return state, True
        state = JobState(
            job_id=f"job-{next(self._counter):06d}",
            request=request,
            key=key,
            submitted_at=time.time(),
        )
        try:
            self._queue.put_nowait(state)
        except asyncio.QueueFull:
            raise ServiceOverloadedError(
                f"job queue is full ({self.queue_limit} pending); retry later"
            ) from None
        self.jobs[state.job_id] = state
        self._inflight[key] = state.job_id
        self.stats["submitted"] += 1
        self._trim_history()
        return state, False

    def _trim_history(self) -> None:
        """Drop the oldest finished jobs beyond the history limit."""
        finished = [
            job_id
            for job_id, state in self.jobs.items()
            if state.status in (JobStatus.COMPLETED, JobStatus.FAILED)
        ]
        for job_id in finished[: max(0, len(self.jobs) - self.history_limit)]:
            del self.jobs[job_id]

    # -- execution -----------------------------------------------------

    async def _run_on_daemon_thread(self, state: JobState) -> Any:
        """Execute one job on a fresh daemon thread; await its outcome.

        Concurrency stays bounded by the worker tasks (each runs at most one
        job at a time), so per-job threads cost nothing extra.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()

        def run() -> None:
            # `except ... as e` unbinds its name when the block ends, so the
            # outcome closure must capture a separate binding that survives.
            failure: Optional[BaseException] = None
            result: Any = None
            try:
                result = self._execute(state)
            except BaseException as error:  # noqa: BLE001 -- marshalled to the future
                failure = error

            def outcome() -> None:
                if future.done():
                    return
                if failure is not None:
                    future.set_exception(failure)
                else:
                    future.set_result(result)

            try:
                loop.call_soon_threadsafe(outcome)
            except RuntimeError:
                pass  # loop already closed during shutdown; result is moot

        threading.Thread(target=run, name="repro-worker", daemon=True).start()
        return await future

    async def _worker_loop(self) -> None:
        while True:
            state = await self._queue.get()
            state.status = JobStatus.RUNNING
            state.started_at = time.time()
            try:
                state.result = await self._run_on_daemon_thread(state)
                state.status = JobStatus.COMPLETED
                self.stats["completed"] += 1
            except asyncio.CancelledError:
                state.status = JobStatus.FAILED
                state.error = "server shut down before the job finished"
                raise
            except Exception as error:  # noqa: BLE001 -- job failure, not server failure
                state.status = JobStatus.FAILED
                state.error = f"{type(error).__name__}: {error}"
                self.stats["failed"] += 1
            finally:
                state.finished_at = time.time()
                if self._inflight.get(state.key) == state.job_id:
                    del self._inflight[state.key]
                self._queue.task_done()

    def _execute(self, state: JobState) -> Any:
        """Run one job to completion in a worker thread; returns the payload.

        A fresh runner per job keeps the progress counters per-request; the
        shared cache is what deduplicates work across jobs over time.  The
        runner's pool must use the spawn start method here: this process is
        multithreaded (event loop + executor threads), so a forked child
        could inherit a lock a sibling thread holds and deadlock.
        """
        runner = ExperimentRunner(
            jobs=self.sim_jobs,
            cache=self.cache,
            start_method="spawn" if self.sim_jobs > 1 else None,
        )
        state.runner = runner
        hook = self.pre_execute
        if hook is not None:
            hook(state)
        request = state.request
        try:
            if request.figure is not None:
                spec = experiment_by_name(request.figure)
                context = campaign_context(
                    full=request.full,
                    instructions=request.instructions,
                    seed=request.seed,
                    runner=runner,
                    engine=request.engine,
                )
                return to_jsonable(spec.run(context))
            batch = runner.run_batch(list(request.cases))
            return {key: result.to_dict() for key, result in batch.items()}
        finally:
            runner.close()

    # -- lookups -------------------------------------------------------

    def result_for(self, key: str) -> Optional[Dict[str, Any]]:
        """Look one simulation up in the shared cache by its content address.

        Only well-formed content addresses (64 hex digits) reach the cache:
        the key comes straight from the request URL, and anything else could
        traverse outside the cache root via ``ResultCache.path_for``.
        """
        if self.cache is None or not re.fullmatch(r"[0-9a-f]{64}", key):
            return None
        cached = self.cache.get(key)
        return None if cached is None else cached.to_dict()

    def health(self) -> Dict[str, Any]:
        """The ``GET /v1/healthz`` document."""
        from repro._version import __version__

        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": time.time() - self.started_at,
            "workers": self.workers,
            "sim_jobs": self.sim_jobs,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self.queue_limit,
            "inflight": len(self._inflight),
            "cache_dir": None if self.cache is None else str(self.cache.root),
            "jobs": dict(self.stats),
        }

"""The job queue: coalescing, tenant admission and the fair-scheduled pool.

:class:`JobManager` owns the server's execution state:

* an in-memory **job store** (``job_id -> JobState``) with a bounded history
  of finished jobs,
* the **coalescing index** -- while a request is queued or running, its
  content address (:meth:`repro.exp.request.JobRequest.key`) maps to the
  live job, so an identical concurrent submission returns the same job
  instead of executing twice.  The key deliberately excludes the tenant, so
  identical work submitted by *different tenants* coalesces too,
* **admission control** -- a server-wide bound on queued jobs plus
  per-tenant quotas (max queued, max in-flight); a violated bound raises
  :class:`~repro.common.errors.ServiceOverloadedError` (HTTP 429 with a
  ``Retry-After`` hint), carrying :data:`~repro.common.errors.ErrorCode`
  ``overloaded`` for the global bound or ``tenant_quota_exceeded`` for a
  tenant quota -- one greedy tenant's rejections never affect the others,
* a **weighted fair scheduler** (:mod:`repro.service.tenancy`): per-tenant
  queues with two priority lanes (``interactive`` before ``batch``), drained
  by stride scheduling so saturated tenants receive work shares proportional
  to their configured weights, and
* a **worker pool**: ``workers`` asyncio tasks, each asking the scheduler
  for the next job and running the blocking simulation on a daemon thread so
  the event loop stays responsive.  Daemon (rather than executor) threads
  matter for shutdown: a ``concurrent.futures`` pool's non-daemon threads
  are joined at interpreter exit, so Ctrl-C on ``repro serve`` would hang
  until a running ``--full`` campaign finished; daemon threads let the
  process exit promptly.

Every execution builds a fresh :class:`~repro.exp.runner.ExperimentRunner`
over the *shared* :class:`~repro.exp.cache.ResultCache`, which is what makes
a re-submission after completion finish with zero simulations: the runner
satisfies every job from the cache (atomic writes make the directory safe to
share between workers).  All submit/complete bookkeeping happens on the
event-loop thread; worker threads only touch their own job's runner.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import math
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.common.errors import ErrorCode, ServiceOverloadedError
from repro.common.serialize import to_jsonable
from repro.exp.cache import ResultCache
from repro.exp.request import JobRequest
from repro.exp.runner import ExperimentRunner
from repro.obs import spans
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service.tenancy import (
    LANE_BATCH,
    LANE_INTERACTIVE,
    TenancyConfig,
    TenantScheduler,
)
from repro.sim.experiments import campaign_context, experiment_by_name

#: Schema of the ``GET /v1/stats`` document.  Version 2 added the
#: ``schema_version`` marker itself and guaranteed ``uptime_seconds`` as a
#: stable float field; v2 is the documented stable contract for scrapers.
STATS_SCHEMA_VERSION = 2

log = get_logger("service.jobs")


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobState:
    """Everything the server knows about one submitted job."""

    job_id: str
    request: JobRequest
    key: str
    #: Wall-clock submission time (the wire form clients see).
    submitted_at: float
    #: Monotonic twin of ``submitted_at``: every *duration* (queue wait,
    #: service time, elapsed) is computed from the monotonic clock so an NTP
    #: step can never produce a negative or wildly wrong latency sample.
    submitted_monotonic: float = 0.0
    #: Resolved tenant and scheduling lane (admission metadata; the first
    #: submitter's tenant owns a coalesced job).
    tenant: str = "default"
    lane: str = LANE_BATCH
    #: The correlation ID of the submission that created this job (the
    #: first submitter's, for a coalesced job), echoed in status documents.
    trace_id: Optional[str] = None
    status: JobStatus = JobStatus.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    #: How many later identical submissions were folded into this job.
    coalesced_submissions: int = 0
    #: The runner executing this job (progress counters), set by the worker.
    runner: Optional[ExperimentRunner] = field(default=None, repr=False)

    def view(self, include_result: bool = True) -> Dict[str, Any]:
        """The job's wire status document (``GET /v1/jobs/{id}``)."""
        runner = self.runner
        elapsed = None
        if self.started_monotonic is not None:
            elapsed = (self.finished_monotonic or time.monotonic()) - self.started_monotonic
        document: Dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status.value,
            "request_key": self.key,
            "tenant": self.tenant,
            "priority": self.lane,
            "trace_id": self.trace_id,
            "figure": self.request.figure,
            "case_count": len(self.request.cases),
            "instructions": self.request.instructions,
            "seed": self.request.seed,
            "full": self.request.full,
            "engine": self.request.engine,
            "policy": self.request.policy,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": elapsed,
            "coalesced_submissions": self.coalesced_submissions,
            "progress": {
                "executed_jobs": runner.executed_jobs if runner is not None else 0,
                "cache_hits": runner.cache_hits if runner is not None else 0,
            },
            "error": self.error,
        }
        if include_result and self.status is JobStatus.COMPLETED:
            document["result"] = self.result
        return document


class JobManager:
    """Job store + coalescing index + tenant admission + fair worker pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        sim_jobs: int = 1,
        queue_limit: int = 8,
        history_limit: int = 256,
        tenancy: Optional[TenancyConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        shard_index: int = 0,
        shard_count: int = 1,
    ) -> None:
        self.cache = cache
        self.workers = max(1, workers)
        self.sim_jobs = max(1, sim_jobs)
        self.queue_limit = max(1, queue_limit)
        self.history_limit = max(1, history_limit)
        #: Which shard of a ``repro serve --shards N`` group this manager is.
        #: Sharded job IDs carry the shard index (``job-s2-000017``) so any
        #: shard can route a status poll to the shard that owns the job.
        self.shard_index = shard_index
        self.shard_count = max(1, shard_count)
        self.tenancy = tenancy if tenancy is not None else TenancyConfig.open()
        #: The registry this manager (and its scheduler/tenants) report
        #: into; a private one per manager by default, so embedded test
        #: servers never share counters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scheduler = TenantScheduler(self.tenancy, metrics=self.metrics)
        self.jobs: Dict[str, JobState] = {}
        self._inflight: Dict[str, str] = {}
        #: Set whenever scheduler state changes; idle workers wait on it.
        self._work_available = asyncio.Event()
        self._worker_tasks: List[asyncio.Task] = []
        self._counter = itertools.count(1)
        #: Completed figure/batch payloads keyed by *request* key, so a
        #: poller whose job was trimmed from the bounded history can still
        #: fetch the result via ``GET /v1/results/{request key}``.  Bounded
        #: like the job history (oldest completion evicted first).
        self._finished_results: "OrderedDict[str, Any]" = OrderedDict()
        #: Wall-clock start (wire form) and its monotonic twin (used for
        #: every uptime/duration computation -- immune to NTP steps).
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
        }
        #: Rejections by admission control (not part of ``stats`` so the
        #: aggregate job counters keep their historical meaning).
        self.rejections: Dict[str, int] = {"overloaded": 0, "tenant_quota_exceeded": 0}
        #: Running mean of observed service times, for Retry-After hints.
        self._service_time_sum = 0.0
        self._service_time_count = 0
        #: Test hook: called (in the worker thread) just before execution.
        self.pre_execute: Optional[Callable[[JobState], None]] = None
        # Queue-state gauges, computed at scrape time so they can never
        # drift from the scheduler's actual state.
        self.metrics.gauge(
            "repro_queue_depth", "Jobs queued (not yet running)"
        ).set_function(self.scheduler.queued_total)
        self.metrics.gauge(
            "repro_queue_limit", "Admission-control bound on queued jobs"
        ).set_function(lambda: self.queue_limit)
        self.metrics.gauge(
            "repro_jobs_inflight", "Jobs currently executing"
        ).set_function(self.scheduler.inflight_total)
        self.metrics.gauge(
            "repro_uptime_seconds", "Seconds since this job manager started"
        ).set_function(lambda: time.monotonic() - self._started_monotonic)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-worker-{index}")
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel the worker tasks (their daemon threads die with the process)."""
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []

    # -- submission (event-loop thread) --------------------------------

    def resolve_lane(self, request: JobRequest) -> str:
        """The scheduling lane a request rides: explicit priority wins, then
        full campaigns default to ``batch`` and everything else to
        ``interactive`` (short jobs must never wait behind campaigns)."""
        if request.priority is not None:
            return request.priority
        return LANE_BATCH if request.full else LANE_INTERACTIVE

    def submit(
        self, request: JobRequest, trace_id: Optional[str] = None
    ) -> Tuple[JobState, bool]:
        """Admit a request; returns ``(job, coalesced)``.

        An identical in-flight request (same content address, still queued or
        running -- regardless of tenant) is coalesced: the existing job is
        returned and nothing is enqueued.  Coalesced submissions bypass the
        quotas (they add no work).  Otherwise admission charges the resolved
        tenant: a full tenant quota or a full server-wide queue raises
        :class:`ServiceOverloadedError` with the matching error code.
        ``trace_id`` is the submission's correlation ID; the first
        submitter's ID owns a coalesced job.
        """
        request = request.normalized()
        tenant = request.tenant if request.tenant is not None else self.tenancy.default_tenant
        # Resolve the spec first: an unknown tenant under a closed roster is
        # a 400 (ConfigurationError), never a quota rejection.
        runtime = self.scheduler.runtime(tenant)
        accounting = runtime.accounting
        lane = self.resolve_lane(request)
        key = request.key()
        existing_id = self._inflight.get(key)
        if existing_id is not None:
            state = self.jobs[existing_id]
            state.coalesced_submissions += 1
            self.stats["coalesced"] += 1
            accounting.inc("coalesced")
            log.debug(
                "submission coalesced with %s", state.job_id, extra={"tenant": tenant}
            )
            return state, True
        if runtime.spec.max_queued is not None and runtime.queued() >= runtime.spec.max_queued:
            accounting.inc("rejected_quota")
            self.rejections["tenant_quota_exceeded"] += 1
            raise ServiceOverloadedError(
                f"tenant {tenant!r} already has {runtime.queued()} jobs queued "
                f"(quota {runtime.spec.max_queued}); retry later",
                code=ErrorCode.TENANT_QUOTA_EXCEEDED,
                tenant=tenant,
                retry_after=self.retry_after_hint(runtime.queued()),
            )
        if self.scheduler.queued_total() >= self.queue_limit:
            accounting.inc("rejected_capacity")
            self.rejections["overloaded"] += 1
            raise ServiceOverloadedError(
                f"job queue is full ({self.queue_limit} pending); retry later",
                code=ErrorCode.OVERLOADED,
                tenant=tenant,
                retry_after=self.retry_after_hint(self.scheduler.queued_total()),
            )
        state = JobState(
            job_id=self._next_job_id(),
            request=request,
            key=key,
            submitted_at=time.time(),
            submitted_monotonic=time.monotonic(),
            tenant=tenant,
            lane=lane,
            trace_id=trace_id,
        )
        self.scheduler.enqueue(tenant, lane, state)
        self._work_available.set()
        self.jobs[state.job_id] = state
        self._inflight[key] = state.job_id
        self.stats["submitted"] += 1
        accounting.inc("admitted")
        self._trim_history()
        log.info(
            "admitted %s (%s lane)",
            state.job_id,
            lane,
            extra={"tenant": tenant, "trace_id": trace_id},
        )
        return state, False

    def _next_job_id(self) -> str:
        """Mint the next job id; sharded managers tag it with their shard
        index (``job-s1-000042``) so peers can route status polls here."""
        if self.shard_count > 1:
            return f"job-s{self.shard_index}-{next(self._counter):06d}"
        return f"job-{next(self._counter):06d}"

    def uptime_seconds(self) -> float:
        """Seconds since this manager started, from the monotonic clock."""
        return time.monotonic() - self._started_monotonic

    def retry_after_hint(self, queued_ahead: int) -> int:
        """Seconds a rejected caller should back off: the observed mean
        service time scaled by the backlog per worker, clamped to [1, 60]."""
        if self._service_time_count == 0:
            return 1
        mean = self._service_time_sum / self._service_time_count
        estimate = math.ceil(mean * max(1, queued_ahead) / self.workers)
        return int(min(60, max(1, estimate)))

    def _trim_history(self) -> None:
        """Drop the oldest finished jobs beyond the history limit.

        Only *finished* jobs count against the limit: under a backlog the
        store legitimately holds many queued/running entries, and counting
        them (the pre-PR8 bug) evicted recently finished jobs long before
        ``history_limit`` finished ones existed -- pollers then saw
        "unknown job" for work that had succeeded.  Eviction order is
        completion time, not dict insertion order: a job submitted early but
        finished late is *newer* history than a quick job submitted after it.
        """
        finished = [
            state
            for state in self.jobs.values()
            if state.status in (JobStatus.COMPLETED, JobStatus.FAILED)
        ]
        excess = len(finished) - self.history_limit
        if excess <= 0:
            return
        finished.sort(key=lambda state: state.finished_monotonic or 0.0)
        for state in finished[:excess]:
            del self.jobs[state.job_id]

    # -- execution -----------------------------------------------------

    async def _run_on_daemon_thread(self, state: JobState) -> Any:
        """Execute one job on a fresh daemon thread; await its outcome.

        Concurrency stays bounded by the worker tasks (each runs at most one
        job at a time), so per-job threads cost nothing extra.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()

        def run() -> None:
            # `except ... as e` unbinds its name when the block ends, so the
            # outcome closure must capture a separate binding that survives.
            failure: Optional[BaseException] = None
            result: Any = None
            try:
                result = self._execute(state)
            except BaseException as error:  # noqa: BLE001 -- marshalled to the future
                failure = error

            def outcome() -> None:
                if future.done():
                    return
                if failure is not None:
                    future.set_exception(failure)
                else:
                    future.set_result(result)

            try:
                loop.call_soon_threadsafe(outcome)
            except RuntimeError:
                pass  # loop already closed during shutdown; result is moot

        threading.Thread(target=run, name="repro-worker", daemon=True).start()
        return await future

    async def _next_job(self) -> JobState:
        """Await the scheduler's next pick.

        The pick/clear/wait sequence has no await between ``pick`` and
        ``wait``, and all state changes happen on this same loop, so a
        wakeup can never be lost.
        """
        while True:
            picked = self.scheduler.pick()
            if picked is not None:
                return picked[1]
            self._work_available.clear()
            await self._work_available.wait()

    async def _worker_loop(self) -> None:
        while True:
            state = await self._next_job()
            accounting = self.scheduler.accounting(state.tenant)
            state.status = JobStatus.RUNNING
            state.started_at = time.time()
            state.started_monotonic = time.monotonic()
            accounting.queue_wait.record(
                state.started_monotonic - state.submitted_monotonic
            )
            try:
                state.result = await self._run_on_daemon_thread(state)
                state.status = JobStatus.COMPLETED
                self.stats["completed"] += 1
                accounting.inc("completed")
            except asyncio.CancelledError:
                state.status = JobStatus.FAILED
                state.error = "server shut down before the job finished"
                raise
            except Exception as error:  # noqa: BLE001 -- job failure, not server failure
                state.status = JobStatus.FAILED
                state.error = f"{type(error).__name__}: {error}"
                self.stats["failed"] += 1
                accounting.inc("failed")
                log.warning(
                    "job %s failed: %s",
                    state.job_id,
                    state.error,
                    extra={"tenant": state.tenant, "trace_id": state.trace_id},
                )
            finally:
                state.finished_at = time.time()
                state.finished_monotonic = time.monotonic()
                service_seconds = state.finished_monotonic - state.started_monotonic
                accounting.service_time.record(service_seconds)
                self._service_time_sum += service_seconds
                self._service_time_count += 1
                if state.status is JobStatus.COMPLETED:
                    self._remember_result(state)
                span_args = {
                    "job_id": state.job_id,
                    "tenant": state.tenant,
                    "trace_id": state.trace_id,
                }
                spans.record(
                    "job.queue_wait",
                    state.submitted_at,
                    state.started_monotonic - state.submitted_monotonic,
                    category="service",
                    args=span_args,
                )
                spans.record(
                    "job.execute",
                    state.started_at,
                    service_seconds,
                    category="service",
                    args=span_args,
                )
                if state.runner is not None:
                    accounting.add_sims(
                        state.runner.executed_jobs, state.runner.cache_hits
                    )
                log.info(
                    "job %s finished as %s in %.3fs",
                    state.job_id,
                    state.status.value,
                    service_seconds,
                    extra={"tenant": state.tenant, "trace_id": state.trace_id},
                )
                if self._inflight.get(state.key) == state.job_id:
                    del self._inflight[state.key]
                self.scheduler.release(state.tenant)
                # A released in-flight slot may make a quota-capped tenant
                # runnable again; wake any idle worker.
                self._work_available.set()

    def _execute(self, state: JobState) -> Any:
        """Run one job to completion in a worker thread; returns the payload.

        A fresh runner per job keeps the progress counters per-request; the
        shared cache is what deduplicates work across jobs over time.  The
        runner's pool must use the spawn start method here: this process is
        multithreaded (event loop + executor threads), so a forked child
        could inherit a lock a sibling thread holds and deadlock.
        """
        runner = ExperimentRunner(
            jobs=self.sim_jobs,
            cache=self.cache,
            start_method="spawn" if self.sim_jobs > 1 else None,
        )
        state.runner = runner
        hook = self.pre_execute
        if hook is not None:
            hook(state)
        request = state.request
        try:
            if request.figure is not None:
                spec = experiment_by_name(request.figure)
                context = campaign_context(
                    full=request.full,
                    instructions=request.instructions,
                    seed=request.seed,
                    runner=runner,
                    engine=request.engine,
                    policy=request.policy,
                )
                return to_jsonable(spec.run(context))
            batch = runner.run_batch(list(request.cases))
            return {key: result.to_dict() for key, result in batch.items()}
        finally:
            runner.close()

    # -- lookups -------------------------------------------------------

    def _remember_result(self, state: JobState) -> None:
        """Retain a completed payload under its *request* key.

        This is the trim-survival contract: a client whose finished job fell
        out of the bounded history can still resolve the result through
        ``GET /v1/results/{request key}`` (the receipt carries the key), so a
        job that actually succeeded is never reported as unknown work.
        """
        self._finished_results[state.key] = state.result
        self._finished_results.move_to_end(state.key)
        while len(self._finished_results) > self.history_limit:
            self._finished_results.popitem(last=False)

    def result_for(self, key: str) -> Optional[Any]:
        """Resolve a content address: a finished request's payload, or one
        simulation from the shared cache.

        Only well-formed content addresses (64 hex digits) are looked up:
        the key comes straight from the request URL, and anything else could
        traverse outside the cache root via ``ResultCache.path_for``.
        Request keys (completed figure/batch payloads retained past history
        trimming) are checked before per-simulation cache keys; the two hash
        different inputs, so one key never means both.
        """
        if not re.fullmatch(r"[0-9a-f]{64}", key):
            return None
        held = self._finished_results.get(key)
        if held is not None:
            return held
        if self.cache is None:
            return None
        cached = self.cache.get(key)
        return None if cached is None else cached.to_dict()

    def health(self) -> Dict[str, Any]:
        """The ``GET /v1/healthz`` document."""
        from repro._version import __version__

        tenants_summary = {
            runtime.spec.name: {
                "queued": runtime.queued(),
                "inflight": runtime.inflight,
                "admitted": runtime.accounting.admitted,
                "rejected": (
                    runtime.accounting.rejected_quota
                    + runtime.accounting.rejected_capacity
                ),
            }
            for runtime in self.scheduler.tenants()
        }
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": self.uptime_seconds(),
            "started_at": self.started_at,
            "workers": self.workers,
            "sim_jobs": self.sim_jobs,
            "queue_depth": self.scheduler.queued_total(),
            "queue_limit": self.queue_limit,
            "inflight": len(self._inflight),
            "cache_dir": None if self.cache is None else str(self.cache.root),
            "jobs": dict(self.stats),
            "rejections": dict(self.rejections),
            "tenants": tenants_summary,
        }

    def stats_document(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` document: per-tenant usage and latency.

        This is a stable v2 contract: ``schema_version`` names the document's
        own schema and ``uptime_seconds`` is guaranteed present as a float.
        Additive changes bump :data:`STATS_SCHEMA_VERSION`.
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "uptime_seconds": self.uptime_seconds(),
            "queue": {
                "depth": self.scheduler.queued_total(),
                "limit": self.queue_limit,
                "running": self.scheduler.inflight_total(),
                "workers": self.workers,
            },
            "totals": {**self.stats, "rejections": dict(self.rejections)},
            "default_tenant": self.tenancy.default_tenant,
            "tenants": self.scheduler.stats_document(),
        }

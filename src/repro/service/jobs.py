"""The job queue: coalescing, tenant admission and the fair-scheduled pool.

:class:`JobManager` owns the server's execution state:

* an in-memory **job store** (``job_id -> JobState``) with a bounded history
  of finished jobs,
* the **coalescing index** -- while a request is queued or running, its
  content address (:meth:`repro.exp.request.JobRequest.key`) maps to the
  live job, so an identical concurrent submission returns the same job
  instead of executing twice.  The key deliberately excludes the tenant, so
  identical work submitted by *different tenants* coalesces too,
* **admission control** -- a server-wide bound on queued jobs plus
  per-tenant quotas (max queued, max in-flight); a violated bound raises
  :class:`~repro.common.errors.ServiceOverloadedError` (HTTP 429 with a
  ``Retry-After`` hint), carrying :data:`~repro.common.errors.ErrorCode`
  ``overloaded`` for the global bound or ``tenant_quota_exceeded`` for a
  tenant quota -- one greedy tenant's rejections never affect the others,
* a **weighted fair scheduler** (:mod:`repro.service.tenancy`): per-tenant
  queues with two priority lanes (``interactive`` before ``batch``), drained
  by stride scheduling so saturated tenants receive work shares proportional
  to their configured weights, and
* a **worker pool**: ``workers`` asyncio tasks, each asking the scheduler
  for the next job and running the blocking simulation on a daemon thread so
  the event loop stays responsive.  Daemon (rather than executor) threads
  matter for shutdown: a ``concurrent.futures`` pool's non-daemon threads
  are joined at interpreter exit, so Ctrl-C on ``repro serve`` would hang
  until a running ``--full`` campaign finished; daemon threads let the
  process exit promptly.

Every execution builds a fresh :class:`~repro.exp.runner.ExperimentRunner`
over the *shared* :class:`~repro.exp.cache.ResultCache`, which is what makes
a re-submission after completion finish with zero simulations: the runner
satisfies every job from the cache (atomic writes make the directory safe to
share between workers).  All submit/complete bookkeeping happens on the
event-loop thread; worker threads only touch their own job's runner.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import math
import random
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.common.errors import (
    ConfigurationError,
    ErrorCode,
    JobRetriesExhaustedError,
    JobTimeoutError,
    ReproError,
    ServiceOverloadedError,
    WorkerCrashError,
)
from repro.common.serialize import to_jsonable
from repro.exp.cache import ResultCache
from repro.exp.request import JobRequest
from repro.exp.runner import ExperimentRunner
from repro.faults import get_injector
from repro.obs import spans
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.service.journal import (
    JobJournal,
    JournalReplay,
    replay_journal,
)
from repro.service.tenancy import (
    JOB_EVENTS,
    LANE_BATCH,
    LANE_INTERACTIVE,
    TenancyConfig,
    TenantScheduler,
)
from repro.sim.experiments import campaign_context, experiment_by_name

#: Schema of the ``GET /v1/stats`` document.  Version 2 added the
#: ``schema_version`` marker itself and guaranteed ``uptime_seconds`` as a
#: stable float field; v2 is the documented stable contract for scrapers.
STATS_SCHEMA_VERSION = 2

#: Supervised-retry backoff: attempt ``n`` sleeps ``uniform(0, min(cap,
#: base * 2**n))`` (capped exponential with full jitter, so a burst of
#: crashed jobs does not retry in lockstep).
RETRY_BACKOFF_BASE = 0.1
RETRY_BACKOFF_CAP = 5.0

log = get_logger("service.jobs")


def is_retryable(error: BaseException) -> bool:
    """Whether a job failure is worth re-running on a fresh runner.

    Retryable failures are *substrate* deaths -- the worker process or its
    IPC plumbing was lost, not the simulation itself: re-running identical
    inputs can succeed.  Deterministic library errors (bad configuration,
    simulation invariant violations) reproduce on every attempt, so they
    fail fast rather than burning retries; :class:`WorkerCrashError` is the
    one :class:`ReproError` that *is* retryable, by definition.
    """
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(error, WorkerCrashError):
        return True
    if isinstance(error, ReproError):
        return False
    return isinstance(
        error,
        (BrokenProcessPool, BrokenPipeError, EOFError, ConnectionError, OSError),
    )


class JobStatus(enum.Enum):
    """Lifecycle of a submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass
class JobState:
    """Everything the server knows about one submitted job."""

    job_id: str
    request: JobRequest
    key: str
    #: Wall-clock submission time (the wire form clients see).
    submitted_at: float
    #: Monotonic twin of ``submitted_at``: every *duration* (queue wait,
    #: service time, elapsed) is computed from the monotonic clock so an NTP
    #: step can never produce a negative or wildly wrong latency sample.
    submitted_monotonic: float = 0.0
    #: Resolved tenant and scheduling lane (admission metadata; the first
    #: submitter's tenant owns a coalesced job).
    tenant: str = "default"
    lane: str = LANE_BATCH
    #: The correlation ID of the submission that created this job (the
    #: first submitter's, for a coalesced job), echoed in status documents.
    trace_id: Optional[str] = None
    status: JobStatus = JobStatus.QUEUED
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    started_monotonic: Optional[float] = None
    finished_monotonic: Optional[float] = None
    result: Optional[Any] = None
    error: Optional[str] = None
    #: Machine-readable code for a failed job (an :class:`ErrorCode` value),
    #: so pollers can branch on timeouts vs exhausted retries vs plain bugs.
    error_code: Optional[str] = None
    #: Execution attempts so far (1 = first run; >1 means the supervisor
    #: retried a substrate crash).
    attempts: int = 0
    #: How many later identical submissions were folded into this job.
    coalesced_submissions: int = 0
    #: The runner executing this job (progress counters), set by the worker.
    runner: Optional[ExperimentRunner] = field(default=None, repr=False)

    def view(self, include_result: bool = True) -> Dict[str, Any]:
        """The job's wire status document (``GET /v1/jobs/{id}``)."""
        runner = self.runner
        elapsed = None
        if self.started_monotonic is not None:
            elapsed = (self.finished_monotonic or time.monotonic()) - self.started_monotonic
        document: Dict[str, Any] = {
            "job_id": self.job_id,
            "status": self.status.value,
            "request_key": self.key,
            "tenant": self.tenant,
            "priority": self.lane,
            "trace_id": self.trace_id,
            "figure": self.request.figure,
            "case_count": len(self.request.cases),
            "instructions": self.request.instructions,
            "seed": self.request.seed,
            "full": self.request.full,
            "engine": self.request.engine,
            "policy": self.request.policy,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "elapsed_seconds": elapsed,
            "coalesced_submissions": self.coalesced_submissions,
            "attempts": self.attempts,
            "progress": {
                "executed_jobs": runner.executed_jobs if runner is not None else 0,
                "cache_hits": runner.cache_hits if runner is not None else 0,
            },
            "error": self.error,
            "error_code": self.error_code,
        }
        if include_result and self.status is JobStatus.COMPLETED:
            document["result"] = self.result
        return document


class JobManager:
    """Job store + coalescing index + tenant admission + fair worker pool."""

    def __init__(
        self,
        *,
        cache: Optional[ResultCache] = None,
        workers: int = 1,
        sim_jobs: int = 1,
        queue_limit: int = 8,
        history_limit: int = 256,
        tenancy: Optional[TenancyConfig] = None,
        metrics: Optional[MetricsRegistry] = None,
        shard_index: int = 0,
        shard_count: int = 1,
        job_timeout: Optional[float] = None,
        job_retries: int = 2,
        retry_backoff_base: float = RETRY_BACKOFF_BASE,
    ) -> None:
        self.cache = cache
        self.workers = max(1, workers)
        self.sim_jobs = max(1, sim_jobs)
        self.queue_limit = max(1, queue_limit)
        self.history_limit = max(1, history_limit)
        #: Per-job wall-clock execution bound (``None`` = unlimited, the
        #: default: ``--full`` campaigns legitimately run for a long time).
        self.job_timeout = job_timeout if job_timeout and job_timeout > 0 else None
        #: How many times a *retryable* failure (see :func:`is_retryable`)
        #: is re-run before the job fails with ``job_retries_exhausted``.
        self.job_retries = max(0, job_retries)
        self.retry_backoff_base = max(0.0, retry_backoff_base)
        #: Which shard of a ``repro serve --shards N`` group this manager is.
        #: Sharded job IDs carry the shard index (``job-s2-000017``) so any
        #: shard can route a status poll to the shard that owns the job.
        self.shard_index = shard_index
        self.shard_count = max(1, shard_count)
        self.tenancy = tenancy if tenancy is not None else TenancyConfig.open()
        #: The registry this manager (and its scheduler/tenants) report
        #: into; a private one per manager by default, so embedded test
        #: servers never share counters.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.scheduler = TenantScheduler(self.tenancy, metrics=self.metrics)
        self.jobs: Dict[str, JobState] = {}
        self._inflight: Dict[str, str] = {}
        #: Set whenever scheduler state changes; idle workers wait on it.
        self._work_available = asyncio.Event()
        self._worker_tasks: List[asyncio.Task] = []
        self._counter = itertools.count(1)
        #: Completed figure/batch payloads keyed by *request* key, so a
        #: poller whose job was trimmed from the bounded history can still
        #: fetch the result via ``GET /v1/results/{request key}``.  Bounded
        #: like the job history (oldest completion evicted first).
        self._finished_results: "OrderedDict[str, Any]" = OrderedDict()
        #: Wall-clock start (wire form) and its monotonic twin (used for
        #: every uptime/duration computation -- immune to NTP steps).
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
        }
        #: Rejections by admission control (not part of ``stats`` so the
        #: aggregate job counters keep their historical meaning).
        self.rejections: Dict[str, int] = {"overloaded": 0, "tenant_quota_exceeded": 0}
        #: Running mean of observed service times, for Retry-After hints.
        self._service_time_sum = 0.0
        self._service_time_count = 0
        #: Test hook: called (in the worker thread) just before execution.
        self.pre_execute: Optional[Callable[[JobState], None]] = None
        #: The durable lifecycle journal, attached by :meth:`recover_journal`
        #: (``None`` = journaling disabled, e.g. cache-less servers).
        self.journal: Optional[JobJournal] = None
        self._retries_total = self.metrics.counter(
            "repro_job_retries_total",
            "Supervised re-executions after retryable job failures",
        )
        self._journal_replays = self.metrics.counter(
            "repro_journal_replays_total",
            "Journal generations replayed at startup",
        )
        # Queue-state gauges, computed at scrape time so they can never
        # drift from the scheduler's actual state.
        self.metrics.gauge(
            "repro_queue_depth", "Jobs queued (not yet running)"
        ).set_function(self.scheduler.queued_total)
        self.metrics.gauge(
            "repro_queue_limit", "Admission-control bound on queued jobs"
        ).set_function(lambda: self.queue_limit)
        self.metrics.gauge(
            "repro_jobs_inflight", "Jobs currently executing"
        ).set_function(self.scheduler.inflight_total)
        self.metrics.gauge(
            "repro_uptime_seconds", "Seconds since this job manager started"
        ).set_function(lambda: time.monotonic() - self._started_monotonic)

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks on the running event loop."""
        self._worker_tasks = [
            asyncio.create_task(self._worker_loop(), name=f"repro-service-worker-{index}")
            for index in range(self.workers)
        ]

    async def stop(self) -> None:
        """Cancel the worker tasks (their daemon threads die with the process)."""
        for task in self._worker_tasks:
            task.cancel()
        if self._worker_tasks:
            await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks = []
        if self.journal is not None:
            self.journal.close()

    # -- durability ----------------------------------------------------

    def recover_journal(self, path: Union[str, Path]) -> JournalReplay:
        """Replay a prior journal generation at ``path`` and journal onward.

        Call before the server accepts connections.  Any existing file is
        replayed (per-tenant accounting and aggregate totals restored, every
        admitted-but-unfinished job re-queued), then rotated aside to
        ``<name>.prev``; a fresh generation opens with a ``snapshot`` record
        of the restored totals so accounting chains across any number of
        restarts.  Re-queues bypass admission control (the jobs were already
        admitted once) and complete instantly when the shared result cache
        already holds their work -- the content-addressed idempotence that
        makes replay safe.
        """
        path = Path(path)
        replay = replay_journal(path)
        if path.exists():
            path.replace(path.with_name(path.name + ".prev"))
        if replay.records:
            self._restore_accounting(replay)
            self._journal_replays.inc()
        self.journal = JobJournal(path)
        self.journal.snapshot(dict(self.stats), self._tenant_event_totals())
        for job in replay.pending:
            try:
                self.submit(job.request, trace_id=job.trace_id, requeued=True)
            except ReproError as error:
                # A replayed record for a tenant no longer in a closed
                # roster (or similar config drift) must not stop the server.
                log.warning(
                    "could not re-queue journaled job %s: %s", job.job_id, error
                )
        if replay.records or replay.pending:
            log.info(
                "journal replay: %d records, %d re-queued, %d skipped",
                replay.records,
                len(replay.pending),
                replay.skipped,
            )
        return replay

    def _restore_accounting(self, replay: JournalReplay) -> None:
        """Fold replayed totals into this (fresh) manager's accounting."""
        for event in ("submitted", "coalesced", "completed", "failed"):
            self.stats[event] += int(replay.totals.get(event, 0))
        for tenant, events in replay.tenant_events.items():
            try:
                accounting = self.scheduler.accounting(tenant)
            except ConfigurationError:
                log.warning(
                    "journal names tenant %r not in the current roster; skipped", tenant
                )
                continue
            for event, count in events.items():
                if event in JOB_EVENTS and count > 0:
                    accounting.inc(event, count)

    def _tenant_event_totals(self) -> Dict[str, Dict[str, int]]:
        """Per-tenant lifecycle counts, shaped for a journal snapshot."""
        totals: Dict[str, Dict[str, int]] = {}
        for runtime in self.scheduler.tenants():
            events = {
                event: int(getattr(runtime.accounting, event))
                for event in JOB_EVENTS
            }
            events = {event: count for event, count in events.items() if count}
            if events:
                totals[runtime.spec.name] = events
        return totals

    # -- submission (event-loop thread) --------------------------------

    def resolve_lane(self, request: JobRequest) -> str:
        """The scheduling lane a request rides: explicit priority wins, then
        full campaigns default to ``batch`` and everything else to
        ``interactive`` (short jobs must never wait behind campaigns)."""
        if request.priority is not None:
            return request.priority
        return LANE_BATCH if request.full else LANE_INTERACTIVE

    def submit(
        self,
        request: JobRequest,
        trace_id: Optional[str] = None,
        *,
        requeued: bool = False,
    ) -> Tuple[JobState, bool]:
        """Admit a request; returns ``(job, coalesced)``.

        An identical in-flight request (same content address, still queued or
        running -- regardless of tenant) is coalesced: the existing job is
        returned and nothing is enqueued.  Coalesced submissions bypass the
        quotas (they add no work).  Otherwise admission charges the resolved
        tenant: a full tenant quota or a full server-wide queue raises
        :class:`ServiceOverloadedError` with the matching error code.
        ``trace_id`` is the submission's correlation ID; the first
        submitter's ID owns a coalesced job.

        ``requeued`` marks a journal-replay re-admission: the job was
        already admitted (and counted, and quota-charged) by a previous
        server generation, so it bypasses admission control and is not
        re-counted -- dropping it to a full queue would lose a job the old
        server had acknowledged.
        """
        request = request.normalized()
        tenant = request.tenant if request.tenant is not None else self.tenancy.default_tenant
        # Resolve the spec first: an unknown tenant under a closed roster is
        # a 400 (ConfigurationError), never a quota rejection.
        runtime = self.scheduler.runtime(tenant)
        accounting = runtime.accounting
        lane = self.resolve_lane(request)
        key = request.key()
        existing_id = self._inflight.get(key)
        if existing_id is not None:
            state = self.jobs[existing_id]
            state.coalesced_submissions += 1
            self.stats["coalesced"] += 1
            accounting.inc("coalesced")
            if self.journal is not None:
                self.journal.coalesced(state, tenant)
            log.debug(
                "submission coalesced with %s", state.job_id, extra={"tenant": tenant}
            )
            return state, True
        if requeued:
            return self._admit(request, key, tenant, lane, trace_id, requeued=True), False
        if runtime.spec.max_queued is not None and runtime.queued() >= runtime.spec.max_queued:
            accounting.inc("rejected_quota")
            self.rejections["tenant_quota_exceeded"] += 1
            raise ServiceOverloadedError(
                f"tenant {tenant!r} already has {runtime.queued()} jobs queued "
                f"(quota {runtime.spec.max_queued}); retry later",
                code=ErrorCode.TENANT_QUOTA_EXCEEDED,
                tenant=tenant,
                retry_after=self.retry_after_hint(runtime.queued()),
            )
        if self.scheduler.queued_total() >= self.queue_limit:
            accounting.inc("rejected_capacity")
            self.rejections["overloaded"] += 1
            raise ServiceOverloadedError(
                f"job queue is full ({self.queue_limit} pending); retry later",
                code=ErrorCode.OVERLOADED,
                tenant=tenant,
                retry_after=self.retry_after_hint(self.scheduler.queued_total()),
            )
        return self._admit(request, key, tenant, lane, trace_id, requeued=False), False

    def _admit(
        self,
        request: JobRequest,
        key: str,
        tenant: str,
        lane: str,
        trace_id: Optional[str],
        *,
        requeued: bool,
    ) -> JobState:
        """Create, enqueue and journal one admitted job (admission control
        already passed -- or was bypassed for a journal re-queue)."""
        state = JobState(
            job_id=self._next_job_id(),
            request=request,
            key=key,
            submitted_at=time.time(),
            submitted_monotonic=time.monotonic(),
            tenant=tenant,
            lane=lane,
            trace_id=trace_id,
        )
        self.scheduler.enqueue(tenant, lane, state)
        self._work_available.set()
        self.jobs[state.job_id] = state
        self._inflight[key] = state.job_id
        if not requeued:
            # A re-queued job was counted by the generation that first
            # admitted it; those totals arrived via the journal snapshot.
            self.stats["submitted"] += 1
            self.scheduler.accounting(tenant).inc("admitted")
        if self.journal is not None:
            self.journal.admitted(state, requeued=requeued)
        self._trim_history()
        log.info(
            "admitted %s (%s lane)%s",
            state.job_id,
            lane,
            " [journal re-queue]" if requeued else "",
            extra={"tenant": tenant, "trace_id": trace_id},
        )
        return state

    def _next_job_id(self) -> str:
        """Mint the next job id; sharded managers tag it with their shard
        index (``job-s1-000042``) so peers can route status polls here."""
        if self.shard_count > 1:
            return f"job-s{self.shard_index}-{next(self._counter):06d}"
        return f"job-{next(self._counter):06d}"

    def uptime_seconds(self) -> float:
        """Seconds since this manager started, from the monotonic clock."""
        return time.monotonic() - self._started_monotonic

    def retry_after_hint(self, queued_ahead: int) -> int:
        """Seconds a rejected caller should back off: the observed mean
        service time scaled by the backlog per worker, clamped to [1, 60]."""
        if self._service_time_count == 0:
            return 1
        mean = self._service_time_sum / self._service_time_count
        estimate = math.ceil(mean * max(1, queued_ahead) / self.workers)
        return int(min(60, max(1, estimate)))

    def _trim_history(self) -> None:
        """Drop the oldest finished jobs beyond the history limit.

        Only *finished* jobs count against the limit: under a backlog the
        store legitimately holds many queued/running entries, and counting
        them (the pre-PR8 bug) evicted recently finished jobs long before
        ``history_limit`` finished ones existed -- pollers then saw
        "unknown job" for work that had succeeded.  Eviction order is
        completion time, not dict insertion order: a job submitted early but
        finished late is *newer* history than a quick job submitted after it.
        """
        finished = [
            state
            for state in self.jobs.values()
            if state.status in (JobStatus.COMPLETED, JobStatus.FAILED)
        ]
        excess = len(finished) - self.history_limit
        if excess <= 0:
            return
        finished.sort(key=lambda state: state.finished_monotonic or 0.0)
        for state in finished[:excess]:
            del self.jobs[state.job_id]

    # -- execution -----------------------------------------------------

    async def _run_on_daemon_thread(self, state: JobState) -> Any:
        """Execute one job on a fresh daemon thread; await its outcome.

        Concurrency stays bounded by the worker tasks (each runs at most one
        job at a time), so per-job threads cost nothing extra.
        """
        loop = asyncio.get_running_loop()
        future: "asyncio.Future[Any]" = loop.create_future()

        def run() -> None:
            # `except ... as e` unbinds its name when the block ends, so the
            # outcome closure must capture a separate binding that survives.
            failure: Optional[BaseException] = None
            result: Any = None
            try:
                result = self._execute(state)
            except BaseException as error:  # noqa: BLE001 -- marshalled to the future
                failure = error

            def outcome() -> None:
                if future.done():
                    return
                if failure is not None:
                    future.set_exception(failure)
                else:
                    future.set_result(result)

            try:
                loop.call_soon_threadsafe(outcome)
            except RuntimeError:
                pass  # loop already closed during shutdown; result is moot

        threading.Thread(target=run, name="repro-worker", daemon=True).start()
        return await future

    async def _next_job(self) -> JobState:
        """Await the scheduler's next pick.

        The pick/clear/wait sequence has no await between ``pick`` and
        ``wait``, and all state changes happen on this same loop, so a
        wakeup can never be lost.
        """
        while True:
            picked = self.scheduler.pick()
            if picked is not None:
                return picked[1]
            self._work_available.clear()
            await self._work_available.wait()

    async def _worker_loop(self) -> None:
        while True:
            state = await self._next_job()
            accounting = self.scheduler.accounting(state.tenant)
            state.status = JobStatus.RUNNING
            state.started_at = time.time()
            state.started_monotonic = time.monotonic()
            accounting.queue_wait.record(
                state.started_monotonic - state.submitted_monotonic
            )
            if self.journal is not None:
                self.journal.dispatched(state)
            try:
                state.result = await self._supervised(state)
                state.status = JobStatus.COMPLETED
                self.stats["completed"] += 1
                accounting.inc("completed")
                if self.journal is not None:
                    self.journal.completed(state)
            except asyncio.CancelledError:
                # Deliberately NOT journalled as failed: the job stays
                # admitted-but-unfinished, so the next generation's replay
                # re-queues it -- a shutdown must never lose accepted work.
                state.status = JobStatus.FAILED
                state.error = "server shut down before the job finished"
                raise
            except Exception as error:  # noqa: BLE001 -- job failure, not server failure
                state.status = JobStatus.FAILED
                state.error = f"{type(error).__name__}: {error}"
                code = getattr(error, "code", None)
                state.error_code = (
                    code.value if isinstance(code, ErrorCode) else ErrorCode.INTERNAL.value
                )
                self.stats["failed"] += 1
                accounting.inc("failed")
                if self.journal is not None:
                    self.journal.failed(state)
                log.warning(
                    "job %s failed: %s",
                    state.job_id,
                    state.error,
                    extra={"tenant": state.tenant, "trace_id": state.trace_id},
                )
            finally:
                state.finished_at = time.time()
                state.finished_monotonic = time.monotonic()
                service_seconds = state.finished_monotonic - state.started_monotonic
                accounting.service_time.record(service_seconds)
                self._service_time_sum += service_seconds
                self._service_time_count += 1
                if state.status is JobStatus.COMPLETED:
                    self._remember_result(state)
                span_args = {
                    "job_id": state.job_id,
                    "tenant": state.tenant,
                    "trace_id": state.trace_id,
                }
                spans.record(
                    "job.queue_wait",
                    state.submitted_at,
                    state.started_monotonic - state.submitted_monotonic,
                    category="service",
                    args=span_args,
                )
                spans.record(
                    "job.execute",
                    state.started_at,
                    service_seconds,
                    category="service",
                    args=span_args,
                )
                if state.runner is not None:
                    accounting.add_sims(
                        state.runner.executed_jobs, state.runner.cache_hits
                    )
                log.info(
                    "job %s finished as %s in %.3fs",
                    state.job_id,
                    state.status.value,
                    service_seconds,
                    extra={"tenant": state.tenant, "trace_id": state.trace_id},
                )
                if self._inflight.get(state.key) == state.job_id:
                    del self._inflight[state.key]
                self.scheduler.release(state.tenant)
                # A released in-flight slot may make a quota-capped tenant
                # runnable again; wake any idle worker.
                self._work_available.set()

    async def _supervised(self, state: JobState) -> Any:
        """Run one job under the supervisor: timeout, bounded retries.

        Each attempt runs :meth:`_execute` on a fresh daemon thread (and a
        fresh runner -- pool re-spawn after a worker crash is free).  A
        configured ``job_timeout`` bounds each attempt's wall clock; on
        expiry the job fails with :class:`JobTimeoutError` and is *not*
        retried (a second attempt would very likely time out too).  The
        abandoned daemon thread may keep computing harmlessly -- it reports
        into a future whose result no longer matters, and its runner feeds
        the shared cache, so the work is not even wasted.

        Retryable failures (see :func:`is_retryable`) are re-run up to
        ``job_retries`` times with capped exponential backoff and full
        jitter; exhaustion fails the job with
        :class:`JobRetriesExhaustedError` chaining the last crash.
        """
        attempt = 0
        while True:
            state.attempts = attempt + 1
            try:
                if self.job_timeout is not None:
                    return await asyncio.wait_for(
                        self._run_on_daemon_thread(state), self.job_timeout
                    )
                return await self._run_on_daemon_thread(state)
            except asyncio.TimeoutError:
                raise JobTimeoutError(
                    f"job exceeded the {self.job_timeout:g}s execution timeout "
                    f"(attempt {attempt + 1})"
                ) from None
            except asyncio.CancelledError:
                raise
            except Exception as error:  # noqa: BLE001 -- classified below
                if not is_retryable(error):
                    raise
                if attempt >= self.job_retries:
                    if self.job_retries > 0:
                        raise JobRetriesExhaustedError(
                            f"job failed after {attempt + 1} attempts; last error: "
                            f"{type(error).__name__}: {error}"
                        ) from error
                    raise
                delay = random.uniform(
                    0.0, min(RETRY_BACKOFF_CAP, self.retry_backoff_base * 2**attempt)
                )
                self._retries_total.inc()
                log.warning(
                    "job %s attempt %d crashed (%s: %s); retrying in %.3fs",
                    state.job_id,
                    attempt + 1,
                    type(error).__name__,
                    error,
                    delay,
                    extra={"tenant": state.tenant, "trace_id": state.trace_id},
                )
                attempt += 1
                if delay > 0:
                    await asyncio.sleep(delay)

    def _execute(self, state: JobState) -> Any:
        """Run one job to completion in a worker thread; returns the payload.

        A fresh runner per job keeps the progress counters per-request; the
        shared cache is what deduplicates work across jobs over time.  The
        runner's pool must use the spawn start method here: this process is
        multithreaded (event loop + executor threads), so a forked child
        could inherit a lock a sibling thread holds and deadlock.
        """
        runner = ExperimentRunner(
            jobs=self.sim_jobs,
            cache=self.cache,
            start_method="spawn" if self.sim_jobs > 1 else None,
        )
        state.runner = runner
        hook = self.pre_execute
        if hook is not None:
            hook(state)
        injector = get_injector()
        if injector is not None and injector.should("kill_worker", key=state.key):
            # The chaos harness's worker kill: a transient substrate death
            # (fired at most once per key) the supervisor must retry past.
            runner.close()
            raise WorkerCrashError("fault injection: worker killed mid-job")
        request = state.request
        try:
            if request.figure is not None:
                spec = experiment_by_name(request.figure)
                context = campaign_context(
                    full=request.full,
                    instructions=request.instructions,
                    seed=request.seed,
                    runner=runner,
                    engine=request.engine,
                    policy=request.policy,
                )
                return to_jsonable(spec.run(context))
            batch = runner.run_batch(list(request.cases))
            return {key: result.to_dict() for key, result in batch.items()}
        finally:
            runner.close()

    # -- lookups -------------------------------------------------------

    def _remember_result(self, state: JobState) -> None:
        """Retain a completed payload under its *request* key.

        This is the trim-survival contract: a client whose finished job fell
        out of the bounded history can still resolve the result through
        ``GET /v1/results/{request key}`` (the receipt carries the key), so a
        job that actually succeeded is never reported as unknown work.
        """
        self._finished_results[state.key] = state.result
        self._finished_results.move_to_end(state.key)
        while len(self._finished_results) > self.history_limit:
            self._finished_results.popitem(last=False)

    def result_for(self, key: str) -> Optional[Any]:
        """Resolve a content address: a finished request's payload, or one
        simulation from the shared cache.

        Only well-formed content addresses (64 hex digits) are looked up:
        the key comes straight from the request URL, and anything else could
        traverse outside the cache root via ``ResultCache.path_for``.
        Request keys (completed figure/batch payloads retained past history
        trimming) are checked before per-simulation cache keys; the two hash
        different inputs, so one key never means both.
        """
        if not re.fullmatch(r"[0-9a-f]{64}", key):
            return None
        held = self._finished_results.get(key)
        if held is not None:
            return held
        if self.cache is None:
            return None
        cached = self.cache.get(key)
        return None if cached is None else cached.to_dict()

    def health(self) -> Dict[str, Any]:
        """The ``GET /v1/healthz`` document."""
        from repro._version import __version__

        tenants_summary = {
            runtime.spec.name: {
                "queued": runtime.queued(),
                "inflight": runtime.inflight,
                "admitted": runtime.accounting.admitted,
                "rejected": (
                    runtime.accounting.rejected_quota
                    + runtime.accounting.rejected_capacity
                ),
            }
            for runtime in self.scheduler.tenants()
        }
        return {
            "status": "ok",
            "version": __version__,
            "uptime_seconds": self.uptime_seconds(),
            "started_at": self.started_at,
            "workers": self.workers,
            "sim_jobs": self.sim_jobs,
            "queue_depth": self.scheduler.queued_total(),
            "queue_limit": self.queue_limit,
            "inflight": len(self._inflight),
            "cache_dir": None if self.cache is None else str(self.cache.root),
            "journal": None if self.journal is None else str(self.journal.path),
            "jobs": dict(self.stats),
            "rejections": dict(self.rejections),
            "tenants": tenants_summary,
        }

    def stats_document(self) -> Dict[str, Any]:
        """The ``GET /v1/stats`` document: per-tenant usage and latency.

        This is a stable v2 contract: ``schema_version`` names the document's
        own schema and ``uptime_seconds`` is guaranteed present as a float.
        Additive changes bump :data:`STATS_SCHEMA_VERSION`.
        """
        return {
            "schema_version": STATS_SCHEMA_VERSION,
            "uptime_seconds": self.uptime_seconds(),
            "queue": {
                "depth": self.scheduler.queued_total(),
                "limit": self.queue_limit,
                "running": self.scheduler.inflight_total(),
                "workers": self.workers,
            },
            "totals": {**self.stats, "rejections": dict(self.rejections)},
            "default_tenant": self.tenancy.default_tenant,
            "tenants": self.scheduler.stats_document(),
        }

"""The durable job journal: an append-only JSONL write-ahead log.

Every job lifecycle transition the :class:`~repro.service.jobs.JobManager`
makes is appended as one JSON line *before* the server answers the client,
so a crashed or restarted server can reconstruct what it had promised:

* ``admitted`` -- carries the full normalised request payload (plus tenant,
  lane, content-address key, engine, policy and trace ID), enough to
  re-queue the job verbatim;
* ``dispatched`` / ``completed`` / ``failed`` / ``coalesced`` -- the
  subsequent transitions, keyed by job ID;
* ``snapshot`` -- the accounting baseline written at the head of each fresh
  journal generation (see below).

**Replay.** On startup the server replays the previous generation's file
(:func:`replay_journal`): jobs admitted but never completed/failed are
**re-queued** -- idempotent, because requests are content-addressed and the
result cache is shared, so a job that actually finished its simulations
before the crash completes instantly from the cache -- and per-tenant
accounting totals are restored.  The replayed file is then rotated aside
(``journal-s0.jsonl.prev``) and a fresh generation begins with a
``snapshot`` record of the restored totals, which keeps restarts
*composable*: replaying the new file folds the snapshot baseline with the
events after it, so accounting survives any number of restarts without
double counting.  Re-queued admissions are marked ``requeued`` and excluded
from the totals fold for the same reason -- the original admission is
already in the snapshot.

Each shard journals into its own file (``journal-s<index>.jsonl`` under the
cache directory), so sharded servers never interleave writes.

**Durability contract.** Records are flushed to the OS on every append
(surviving a killed *process*); they are not fsynced per record (a host
power loss can drop the tail).  A torn final line -- the process died
mid-append -- is skipped by replay, never fatal.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, TextIO, Union

from repro.exp.request import JobRequest
from repro.obs.logs import get_logger

#: Bump when the record layout changes incompatibly; replay skips records
#: from other schemas rather than guessing at their meaning.
JOURNAL_SCHEMA_VERSION = 1

#: The lifecycle events a journal records (``snapshot`` is the baseline
#: record, not a lifecycle transition).
JOURNAL_EVENTS = ("admitted", "dispatched", "completed", "failed", "coalesced")

#: Events that end a job's life; an admitted job with none of these is
#: re-queued on replay.
_TERMINAL_EVENTS = frozenset({"completed", "failed"})

log = get_logger("service.journal")


def journal_path(cache_dir: Union[str, Path], shard_index: int = 0) -> Path:
    """Where a shard's journal lives under the shared cache directory."""
    return Path(cache_dir) / f"journal-s{shard_index}.jsonl"


@dataclass(frozen=True)
class ReplayedJob:
    """One admitted-but-unfinished job reconstructed from the journal."""

    job_id: str
    key: str
    request: JobRequest
    tenant: Optional[str]
    lane: Optional[str]
    trace_id: Optional[str]


@dataclass
class JournalReplay:
    """What :func:`replay_journal` recovered from one journal file."""

    #: Jobs to re-queue, in original admission order.
    pending: List[ReplayedJob] = field(default_factory=list)
    #: Per-tenant lifecycle totals (tenant -> event -> count), snapshot
    #: baseline folded with the events recorded after it.
    tenant_events: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Server-wide job totals (the manager's ``stats`` dict shape).
    totals: Dict[str, int] = field(default_factory=dict)
    #: Well-formed records processed.
    records: int = 0
    #: Malformed or foreign-schema lines skipped (a torn tail is normal).
    skipped: int = 0


def replay_journal(path: Union[str, Path]) -> JournalReplay:
    """Parse one journal file into a :class:`JournalReplay` (pure, no I/O
    beyond reading ``path``; missing file replays empty)."""
    replay = JournalReplay()
    path = Path(path)
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError:
        return replay
    admitted: Dict[str, Dict[str, Any]] = {}
    finished: set = set()
    for line in lines:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            replay.skipped += 1
            continue
        if not isinstance(record, dict) or record.get("schema") != JOURNAL_SCHEMA_VERSION:
            replay.skipped += 1
            continue
        event = record.get("event")
        replay.records += 1
        if event == "snapshot":
            # A snapshot supersedes everything before it (it *is* the fold
            # of the previous generation), so reset the running state.
            replay.totals = {
                key: int(value)
                for key, value in (record.get("totals") or {}).items()
                if isinstance(value, (int, float))
            }
            replay.tenant_events = {
                tenant: {
                    event_name: int(count)
                    for event_name, count in events.items()
                    if isinstance(count, (int, float))
                }
                for tenant, events in (record.get("tenants") or {}).items()
                if isinstance(events, dict)
            }
            admitted.clear()
            finished.clear()
            continue
        if event not in JOURNAL_EVENTS:
            replay.skipped += 1
            replay.records -= 1
            continue
        job_id = record.get("job_id")
        tenant = record.get("tenant")
        if event == "admitted":
            if isinstance(job_id, str) and isinstance(record.get("request"), dict):
                admitted[job_id] = record
            if not record.get("requeued"):
                _bump(replay, tenant, "admitted")
                replay.totals["submitted"] = replay.totals.get("submitted", 0) + 1
        elif event == "coalesced":
            _bump(replay, tenant, "coalesced")
            replay.totals["coalesced"] = replay.totals.get("coalesced", 0) + 1
        elif event == "dispatched":
            _bump(replay, tenant, "dispatched")
        elif event in _TERMINAL_EVENTS:
            if isinstance(job_id, str):
                finished.add(job_id)
            _bump(replay, tenant, event)
            replay.totals[event] = replay.totals.get(event, 0) + 1
    for job_id, record in admitted.items():
        if job_id in finished:
            continue
        try:
            request = JobRequest.from_dict(record["request"])
        except Exception:  # noqa: BLE001 -- a single bad record must not kill replay
            replay.skipped += 1
            continue
        replay.pending.append(
            ReplayedJob(
                job_id=job_id,
                key=str(record.get("key", "")),
                request=request,
                tenant=record.get("tenant"),
                lane=record.get("lane"),
                trace_id=record.get("trace_id"),
            )
        )
    return replay


def _bump(replay: JournalReplay, tenant: Any, event: str) -> None:
    if not isinstance(tenant, str):
        return
    events = replay.tenant_events.setdefault(tenant, {})
    events[event] = events.get(event, 0) + 1


class JobJournal:
    """One shard's append-only journal writer.

    Thread-safe (the event loop owns normal appends, but shutdown paths may
    close from another thread); every append is flushed before returning so
    an acknowledged transition survives a process kill.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._file: Optional[TextIO] = open(self.path, "a", encoding="utf-8")

    # -- writing -------------------------------------------------------

    def append(self, event: str, **fields: Any) -> None:
        """Append one record; a closed journal drops it silently (shutdown
        races must never fail the job transition they trail)."""
        record = {"schema": JOURNAL_SCHEMA_VERSION, "event": event, "ts": time.time()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True)
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.write(line + "\n")
                self._file.flush()
            except OSError as error:  # pragma: no cover - disk full etc.
                log.warning("journal append failed: %s", error)

    def snapshot(
        self, totals: Dict[str, int], tenants: Dict[str, Dict[str, int]]
    ) -> None:
        """Write the accounting baseline heading a fresh generation."""
        self.append("snapshot", totals=totals, tenants=tenants)

    def admitted(self, state: Any, requeued: bool = False) -> None:
        request = state.request
        self.append(
            "admitted",
            job_id=state.job_id,
            key=state.key,
            tenant=state.tenant,
            lane=state.lane,
            trace_id=state.trace_id,
            engine=request.engine,
            policy=request.policy,
            figure=request.figure,
            requeued=requeued,
            request=request.to_dict(),
        )

    def coalesced(self, state: Any, tenant: str) -> None:
        self.append("coalesced", job_id=state.job_id, key=state.key, tenant=tenant)

    def dispatched(self, state: Any) -> None:
        self.append(
            "dispatched", job_id=state.job_id, key=state.key, tenant=state.tenant
        )

    def completed(self, state: Any) -> None:
        self.append(
            "completed", job_id=state.job_id, key=state.key, tenant=state.tenant
        )

    def failed(self, state: Any) -> None:
        self.append(
            "failed",
            job_id=state.job_id,
            key=state.key,
            tenant=state.tenant,
            error=state.error,
            error_code=state.error_code,
        )

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                try:
                    self._file.flush()
                    self._file.close()
                except OSError:  # pragma: no cover - close race on teardown
                    pass
                self._file = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

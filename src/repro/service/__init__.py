"""Simulation-as-a-service: the HTTP layer over the experiment platform.

The :mod:`repro.exp` orchestration layer made every paper figure a
deterministic, content-addressed batch of jobs; this package serves that
capability over HTTP so consumers no longer need to sit on the machine that
owns the cache:

* :mod:`repro.service.server` -- :class:`~repro.service.server.ReproService`,
  an asyncio HTTP server (stdlib only, no framework) exposing
  ``POST /v1/jobs``, ``GET /v1/jobs/{id}``, ``GET /v1/results/{key}``,
  ``GET /v1/healthz``, ``GET /v1/stats`` and ``GET /v1/metrics`` (Prometheus
  text exposition backed by a per-server :mod:`repro.obs` registry).  Every
  response echoes the request's ``X-Repro-Trace-Id``, and the service logs
  through :mod:`repro.obs.logs` (``repro serve --log-json`` for structured
  lines).
* :mod:`repro.service.jobs` -- :class:`~repro.service.jobs.JobManager`:
  request coalescing (identical in-flight submissions share one execution,
  even across tenants), tenant-aware admission control (global queue bound
  plus per-tenant quotas, structured 429s) and a worker pool that reuses
  :class:`~repro.exp.runner.ExperimentRunner` over one shared
  :class:`~repro.exp.cache.ResultCache`, so warm requests complete without
  simulating.
* :mod:`repro.service.tenancy` -- the resource-management layer:
  :class:`~repro.service.tenancy.TenancyConfig` (tenant roster, weights,
  quotas, auth tokens), :class:`~repro.service.tenancy.TenantScheduler`
  (stride-based weighted fair queueing with interactive/batch priority
  lanes) and per-tenant usage/latency accounting behind ``GET /v1/stats``.
* :mod:`repro.service.client` -- :class:`~repro.service.client.ServiceClient`,
  the blocking SDK the ``repro submit`` CLI verb wraps.
* :mod:`repro.service.http` -- minimal HTTP/1.1 framing over asyncio streams.

Start a server with ``python -m repro serve``; see ``docs/USAGE.md`` for the
wire schema, the tenancy model and a curl quickstart.
"""

from repro.service.client import ServiceClient, SubmitReceipt
from repro.service.jobs import JobManager, JobState, JobStatus
from repro.service.server import DEFAULT_PORT, ReproService, ServiceConfig, serve
from repro.service.tenancy import (
    DEFAULT_TENANT,
    TenancyConfig,
    TenantScheduler,
    TenantSpec,
)

__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_TENANT",
    "JobManager",
    "JobState",
    "JobStatus",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "SubmitReceipt",
    "TenancyConfig",
    "TenantScheduler",
    "TenantSpec",
    "serve",
]

"""The asyncio HTTP server: routes the ``/v1`` endpoints to the job manager.

Endpoints (all JSON, wrapped in versioned wire envelopes, see
:func:`repro.common.serialize.wire_envelope`):

* ``POST /v1/jobs`` -- submit a :class:`~repro.exp.request.JobRequest`
  (named figure campaign or explicit job batch).  Answers ``202`` with a
  ``job_accepted`` envelope, or ``200`` when the submission was coalesced
  with an identical in-flight job, or ``429`` (+ ``Retry-After``) when the
  admission queue is full.
* ``GET /v1/jobs/{id}`` -- job status: lifecycle state, progress counters
  (simulations executed vs cache hits so far) and, once completed, the full
  result payload.
* ``GET /v1/results/{key}`` -- direct lookup of one cached simulation by its
  content address (the :func:`repro.exp.runner.job_key` of a ``SimJob``).
* ``GET /v1/healthz`` -- liveness, version, queue depth and job statistics.

Run it with ``python -m repro serve`` or embed :class:`ReproService` (used
by the test suite, which starts it on an ephemeral port).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.common.errors import ConfigurationError, ServiceOverloadedError
from repro.common.serialize import wire_envelope, open_envelope
from repro.exp.cache import ResultCache
from repro.exp.request import JobRequest
from repro.service.http import HTTPRequest, ProtocolError, json_response, read_request
from repro.service.jobs import JobManager

#: Default TCP port (``repro`` on a phone keypad would not fit; 8077 does).
#: Mirrored by the CLI's ``DEFAULT_SERVICE_PORT`` (kept lazy-import-free
#: there); a test asserts the two stay equal.
DEFAULT_PORT = 8077

#: A client gets this long to deliver a complete request; slow or silent
#: connections are dropped so they cannot pin handler coroutines forever.
READ_TIMEOUT_SECONDS = 30.0


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to bring the service up."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Concurrent request executions (worker tasks / threads).
    workers: int = 1
    #: Worker processes inside each request's ExperimentRunner.
    sim_jobs: int = 1
    #: Admission-control bound on queued (not yet running) jobs.
    queue_limit: int = 8
    #: Shared result cache directory; ``None`` disables caching.
    cache_dir: Optional[str] = ".repro-cache"
    #: Finished jobs retained for status queries.
    history_limit: int = 256


class ReproService:
    """One server instance: a :class:`JobManager` behind an asyncio listener."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        cache = ResultCache(config.cache_dir) if config.cache_dir else None
        self.manager = JobManager(
            cache=cache,
            workers=config.workers,
            sim_jobs=config.sim_jobs,
            queue_limit=config.queue_limit,
            history_limit=config.history_limit,
        )
        self._server: Optional[asyncio.AbstractServer] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (resolves port 0 to the real one)."""
        if self._server is None or not self._server.sockets:
            return (self.config.host, self.config.port)
        host, port = self._server.sockets[0].getsockname()[:2]
        return (host, port)

    async def start(self) -> None:
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host, port=self.config.port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.manager.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() must run before serve_forever()"
        await self._server.serve_forever()

    # -- connection handling -------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=READ_TIMEOUT_SECONDS
                )
                if request is None:
                    return
                response = self._dispatch(request)
            except asyncio.TimeoutError:
                response = _error_response(400, "request not received in time")
            except ProtocolError as error:
                response = _error_response(error.status, error.message)
            except ServiceOverloadedError as error:
                response = _error_response(429, str(error), extra=(("Retry-After", "1"),))
            except ConfigurationError as error:
                response = _error_response(400, str(error))
            except Exception as error:  # noqa: BLE001 -- never drop the connection
                response = _error_response(500, f"{type(error).__name__}: {error}")
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _dispatch(self, request: HTTPRequest) -> bytes:
        path, method = request.path, request.method
        if path == "/v1/healthz":
            _require(method, "GET")
            return json_response(200, wire_envelope("health", self.manager.health()))
        if path == "/v1/jobs":
            _require(method, "POST")
            payload = open_envelope(request.json(), "job_request")
            state, coalesced = self.manager.submit(JobRequest.from_dict(payload))
            receipt = {
                "job_id": state.job_id,
                "request_key": state.key,
                "status": state.status.value,
                "coalesced": coalesced,
            }
            return json_response(
                200 if coalesced else 202, wire_envelope("job_accepted", receipt)
            )
        if path.startswith("/v1/jobs/"):
            _require(method, "GET")
            job_id = path[len("/v1/jobs/") :]
            state = self.manager.jobs.get(job_id)
            if state is None:
                return _error_response(404, f"unknown job {job_id!r}")
            include_result = request.query.get("result", "1") != "0"
            return json_response(
                200, wire_envelope("job_status", state.view(include_result=include_result))
            )
        if path.startswith("/v1/results/"):
            _require(method, "GET")
            key = path[len("/v1/results/") :]
            result = self.manager.result_for(key)
            if result is None:
                return _error_response(404, f"no cached result for key {key!r}")
            return json_response(
                200, wire_envelope("cached_result", {"key": key, "result": result})
            )
        return _error_response(404, f"unknown endpoint {method} {path}")


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise ProtocolError(405, f"method {method} not allowed (use {expected})")


def _error_response(status: int, message: str, extra=()) -> bytes:
    return json_response(
        status, wire_envelope("error", {"status": status, "message": message}), extra
    )


async def run_service(config: ServiceConfig) -> None:
    """Start the service and serve until cancelled (the ``serve`` CLI verb)."""
    service = ReproService(config)
    await service.start()
    host, port = service.address
    cache = config.cache_dir or "disabled"
    print(
        f"[repro] serving on http://{host}:{port} "
        f"(workers={config.workers}, sim-jobs={config.sim_jobs}, "
        f"queue-limit={config.queue_limit}, cache={cache})",
        flush=True,
    )
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()


def serve(config: ServiceConfig) -> None:
    """Blocking entry point; returns cleanly on Ctrl-C."""
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:
        print("[repro] server stopped")

"""The asyncio HTTP server: routes the ``/v1`` endpoints to the job manager.

Endpoints (all JSON, wrapped in versioned wire envelopes, see
:func:`repro.common.serialize.wire_envelope`):

* ``POST /v1/jobs`` -- submit a :class:`~repro.exp.request.JobRequest`
  (named figure campaign or explicit job batch).  Answers ``202`` with a
  ``job_accepted`` envelope, or ``200`` when the submission was coalesced
  with an identical in-flight job, or ``429`` (+ ``Retry-After``) when
  admission control rejects it -- with error code ``overloaded`` (global
  queue full) or ``tenant_quota_exceeded`` (this tenant's quota).
* ``GET /v1/jobs/{id}`` -- job status: lifecycle state, tenant/priority,
  progress counters (simulations executed vs cache hits so far) and, once
  completed, the full result payload.
* ``GET /v1/results/{key}`` -- direct lookup of one cached simulation by its
  content address (the :func:`repro.exp.runner.job_key` of a ``SimJob``).
* ``GET /v1/stats`` -- per-tenant usage and latency accounting (weights,
  quotas, work shares, queue-wait and service-time percentiles).
* ``GET /v1/healthz`` -- liveness, version, queue depth, job statistics and
  a per-tenant queue summary.
* ``GET /v1/metrics`` -- the server's metrics registry in Prometheus text
  exposition format (``?format=json`` for the JSON document instead).

**Tracing.** Every request is assigned a trace ID: a valid incoming
``X-Repro-Trace-Id`` header (or v2-envelope ``trace_id``) is honoured,
anything else gets a freshly minted one.  The ID is echoed in the response's
``X-Repro-Trace-Id`` header and envelope, attached to the admitted job, and
injected into every log line the request produces.

**Tenancy.** A submission's tenant comes from (in precedence order) the v2
envelope's ``tenant`` field, the request payload's ``tenant`` field, or the
``X-Repro-Tenant`` header; unlabelled submissions (and all wire-schema-1
envelopes) land on the default tenant.  A tenant configured with an auth
token only accepts submissions carrying ``Authorization: Bearer <token>``.
Every error body carries a structured ``code`` from
:class:`repro.common.errors.ErrorCode`.

**Sharding.** ``repro serve --shards N`` runs N of these servers as
separate processes over one shared result cache (see
:mod:`repro.service.shards` for the port layout and supervisor).  A sharded
server answers ``/v1/stats`` and ``/v1/metrics`` with the *merged*
cross-shard view (``?scope=local`` asks for this shard alone), proxies
status polls for jobs its peers own (sharded job IDs embed the owner's
index), and falls back to its peers for ``/v1/results/{key}`` misses.

Run it with ``python -m repro serve`` (``--tenants tenants.json`` for the
roster, ``--shards N`` for scale-out) or embed :class:`ReproService` (used
by the test suite, which starts it on an ephemeral port).
"""

from __future__ import annotations

import asyncio
import hmac
import re
import signal
import socket
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import (
    ConfigurationError,
    ErrorCode,
    ServiceOverloadedError,
)
from repro.common.serialize import WIRE_SCHEMA_VERSION, read_envelope, wire_envelope
from repro.exp.cache import ResultCache
from repro.exp.request import REQUEST_SCHEMA_VERSION, JobRequest
from repro.faults import FaultInjector, FaultSpec, get_injector, install
from repro.obs.logs import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracing import (
    TRACE_ID_HEADER,
    ensure_trace_id,
    reset_trace_id,
    set_trace_id,
)
from repro.service.http import (
    HTTPRequest,
    ProtocolError,
    json_response,
    read_request,
    text_response,
)
from repro.service.jobs import JobManager
from repro.service.journal import journal_path
from repro.service.shards import (
    fetch_json,
    merge_metrics_documents,
    merge_stats_documents,
    peer_host,
    render_metrics_text,
    shard_port,
)
from repro.service.tenancy import TenancyConfig

log = get_logger("service.server")

#: Whether this platform can bind the shared public port from every shard
#: (the kernel then load-balances accepted connections across them).
REUSE_PORT_AVAILABLE = hasattr(socket, "SO_REUSEPORT")

#: Sharded job IDs: ``job-s<shard>-<counter>`` (minted by JobManager when
#: shard_count > 1); the embedded shard index routes status-poll proxying.
_SHARDED_JOB_ID = re.compile(r"^job-s(\d+)-\d+$")

#: Default TCP port (``repro`` on a phone keypad would not fit; 8077 does).
#: Mirrored by the CLI's ``DEFAULT_SERVICE_PORT`` (kept lazy-import-free
#: there); a test asserts the two stay equal.
DEFAULT_PORT = 8077

#: A client gets this long to deliver a complete request; slow or silent
#: connections are dropped so they cannot pin handler coroutines forever.
READ_TIMEOUT_SECONDS = 30.0

#: A peer shard is marked *suspect* after this many consecutive failed
#: calls and excluded from fan-out/merging (no more hanging aggregate
#: endpoints on a dead peer) ...
SUSPECT_AFTER = 3
#: ... until it has been left alone this long, after which one probe call
#: is allowed through; success clears the suspicion, failure re-arms it.
SUSPECT_RETRY_SECONDS = 5.0

#: The migration note attached to responses for deprecated v1 envelopes.
V1_DEPRECATION_NOTE = (
    "wire schema 1 is deprecated: submissions were mapped to the default "
    "tenant's batch lane; send wire_schema 2 envelopes with explicit "
    "tenant/priority (see docs/USAGE.md, 'Tenancy & fairness')"
)

#: HTTP status -> error code for protocol-level failures.
_CODE_FOR_STATUS = {
    400: ErrorCode.BAD_REQUEST,
    401: ErrorCode.UNAUTHORIZED,
    404: ErrorCode.NOT_FOUND,
    405: ErrorCode.METHOD_NOT_ALLOWED,
    413: ErrorCode.BAD_REQUEST,
}


@dataclass(frozen=True)
class ServiceConfig:
    """Everything ``repro serve`` needs to bring the service up."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    #: Concurrent request executions (worker tasks / threads).
    workers: int = 1
    #: Worker processes inside each request's ExperimentRunner.
    sim_jobs: int = 1
    #: Admission-control bound on queued (not yet running) jobs.
    queue_limit: int = 8
    #: Shared result cache directory; ``None`` disables caching.
    cache_dir: Optional[str] = ".repro-cache"
    #: Finished jobs retained for status queries.
    history_limit: int = 256
    #: Tenant roster, quotas and weights; ``None`` runs the open
    #: single-tenant-compatible policy.
    tenancy: Optional[TenancyConfig] = None
    #: This process's place in a ``repro serve --shards N`` group.  A lone
    #: server keeps the defaults (one shard, index 0).  Sharded processes
    #: each bind their well-known peer port (``port + 1 + shard_index``)
    #: plus the shared public ``port`` via SO_REUSEPORT where available
    #: (shard 0 alone otherwise); see :mod:`repro.service.shards`.
    shard_index: int = 0
    shard_count: int = 1
    #: Per-job wall-clock execution bound in seconds (``None``/0 = off, the
    #: default: ``--full`` campaigns legitimately run for a long time).
    job_timeout: Optional[float] = None
    #: Supervised retries for retryable job failures (worker crashes).
    job_retries: int = 2
    #: Whether to keep the durable job journal (requires a cache dir; the
    #: journal lives beside the cached results it makes replay idempotent).
    journal: bool = True
    #: Seconds a SIGTERM-initiated drain waits for in-flight jobs.
    drain_timeout: float = 10.0
    #: Fault-spec file activating chaos injection (``None`` = no faults).
    faults: Optional[str] = None


class ReproService:
    """One server instance: a :class:`JobManager` behind an asyncio listener."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        # One registry per server instance: embedded test servers stay
        # isolated from each other and from the process-global default.
        self.metrics = MetricsRegistry()
        if config.faults:
            # --faults installs process-wide (the injector is consulted from
            # cache and shard code that never sees this instance).
            install(FaultInjector(FaultSpec.from_file(config.faults)))
        injector = get_injector()
        if injector is not None:
            injector.bind_metrics(self.metrics)
        cache = (
            ResultCache(config.cache_dir, metrics=self.metrics)
            if config.cache_dir
            else None
        )
        self.manager = JobManager(
            cache=cache,
            workers=config.workers,
            sim_jobs=config.sim_jobs,
            queue_limit=config.queue_limit,
            history_limit=config.history_limit,
            tenancy=config.tenancy,
            metrics=self.metrics,
            shard_index=config.shard_index,
            shard_count=config.shard_count,
            job_timeout=config.job_timeout,
            job_retries=config.job_retries,
        )
        from repro._version import __version__

        self.metrics.gauge(
            "repro_build_info",
            "Constant 1; the labels carry the build's version",
            labelnames=("version",),
        ).labels(__version__).set(1)
        self._http_requests = self.metrics.counter(
            "repro_http_requests_total",
            "HTTP requests served, by endpoint, method and status",
            labelnames=("endpoint", "method", "status"),
        )
        self._http_latency = self.metrics.summary(
            "repro_http_request_seconds",
            "Wall-clock time spent handling each request",
            labelnames=("endpoint",),
        )
        self._servers: List[asyncio.AbstractServer] = []
        #: Set while a SIGTERM drain runs: polls keep being served, new
        #: submissions get 503 + Retry-After (``ErrorCode.DRAINING``).
        self._draining = False
        #: Consecutive failed calls per peer shard index, and when each
        #: suspect peer was last declared so (monotonic clock).
        self._peer_failures: Dict[int, int] = {}
        self._peer_suspect_since: Dict[int, float] = {}
        self._peer_suspect_gauge = self.metrics.gauge(
            "repro_peer_suspect",
            "1 while the labelled peer shard is excluded as suspect",
            labelnames=("peer",),
        )

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` of the canonical listener (resolves
        port 0 to the real one; a shard's canonical port is its peer port)."""
        if not self._servers or not self._servers[0].sockets:
            return (self.config.host, self.config.port)
        host, port = self._servers[0].sockets[0].getsockname()[:2]
        return (host, port)

    async def start(self) -> None:
        config = self.config
        if config.cache_dir and config.journal:
            # Replay (and rotate) any previous generation's journal before
            # the listeners open: re-queued jobs must be admitted before any
            # new submission can race them, and a crashed server's accepted
            # work is thereby never lost.
            self.manager.recover_journal(
                journal_path(config.cache_dir, config.shard_index)
            )
        await self.manager.start()
        if config.shard_count <= 1:
            self._servers = [
                await asyncio.start_server(
                    self._handle_client, host=config.host, port=config.port
                )
            ]
            return
        # Sharded: the well-known peer port first (it is this shard's
        # canonical address), then the shared public port -- every shard
        # when SO_REUSEPORT lets the kernel spread accepts, else shard 0
        # alone and clients fall back to round-robining the peer ports.
        listeners = [
            await asyncio.start_server(
                self._handle_client,
                host=config.host,
                port=shard_port(config.port, config.shard_index),
            )
        ]
        if REUSE_PORT_AVAILABLE:
            listeners.append(
                await asyncio.start_server(
                    self._handle_client,
                    host=config.host,
                    port=config.port,
                    reuse_port=True,
                )
            )
        elif config.shard_index == 0:
            listeners.append(
                await asyncio.start_server(
                    self._handle_client, host=config.host, port=config.port
                )
            )
        self._servers = listeners

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
        for server in self._servers:
            await server.wait_closed()
        self._servers = []
        await self.manager.stop()

    async def drain(self, timeout: float) -> bool:
        """Graceful-shutdown drain: stop admitting, finish what's in flight.

        The listeners stay open (pollers must be able to collect results and
        peers to proxy), but ``POST /v1/jobs`` answers 503 + ``Retry-After``
        for the duration.  Returns ``True`` when the queue and in-flight set
        emptied within ``timeout``; on ``False`` the stragglers stay in the
        journal as admitted-but-unfinished, so the next start re-queues them
        -- bounded drain never means lost work.
        """
        self._draining = True
        log.info("draining: rejecting new submissions, finishing in-flight jobs")
        deadline = time.monotonic() + max(0.0, timeout)
        while time.monotonic() < deadline:
            if (
                self.manager.scheduler.queued_total() == 0
                and self.manager.scheduler.inflight_total() == 0
            ):
                log.info("drain complete: no queued or in-flight jobs remain")
                return True
            await asyncio.sleep(0.05)
        log.warning(
            "drain timed out after %.1fs with %d queued / %d in-flight jobs "
            "(they remain journalled for replay)",
            timeout,
            self.manager.scheduler.queued_total(),
            self.manager.scheduler.inflight_total(),
        )
        return False

    async def serve_forever(self) -> None:
        assert self._servers, "start() must run before serve_forever()"
        await asyncio.gather(*(server.serve_forever() for server in self._servers))

    # -- connection handling -------------------------------------------

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        request: Optional[HTTPRequest] = None
        # Mint a trace ID up front so even unparseable requests get a
        # correlated error response; a valid incoming header replaces it.
        trace_id = ensure_trace_id(None)
        started = time.monotonic()
        try:
            try:
                request = await asyncio.wait_for(
                    read_request(reader), timeout=READ_TIMEOUT_SECONDS
                )
                if request is None:
                    return
                trace_id = ensure_trace_id(request.headers.get("x-repro-trace-id"))
                token = set_trace_id(trace_id)
                try:
                    response = await self._dispatch(request, trace_id)
                finally:
                    reset_trace_id(token)
            except asyncio.TimeoutError:
                response = _error_response(
                    400, "request not received in time", trace_id=trace_id
                )
            except ProtocolError as error:
                response = _error_response(error.status, error.message, trace_id=trace_id)
            except ServiceOverloadedError as error:
                retry_after = error.retry_after if error.retry_after is not None else 1
                response = _error_response(
                    429,
                    str(error),
                    code=error.code,
                    tenant=error.tenant,
                    retry_after=retry_after,
                    extra=(("Retry-After", str(int(retry_after))),),
                    trace_id=trace_id,
                )
            except ConfigurationError as error:
                response = _error_response(400, str(error), trace_id=trace_id)
            except Exception as error:  # noqa: BLE001 -- never drop the connection
                response = _error_response(
                    500,
                    f"{type(error).__name__}: {error}",
                    code=ErrorCode.INTERNAL,
                    trace_id=trace_id,
                )
            response = _with_trace_header(response, trace_id)
            self._observe(request, response, time.monotonic() - started, trace_id)
            writer.write(response)
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):
                pass

    def _observe(
        self,
        request: Optional[HTTPRequest],
        response: bytes,
        elapsed: float,
        trace_id: str,
    ) -> None:
        """Account one finished exchange: counters, latency, access log."""
        try:
            status = int(response.split(b" ", 2)[1])
        except (IndexError, ValueError):
            status = 0
        endpoint = _endpoint_label(request)
        method = request.method if request is not None else "-"
        self._http_requests.labels(endpoint, method, str(status)).inc()
        self._http_latency.labels(endpoint).record(elapsed)
        log.info(
            "%s %s -> %d in %.4fs",
            method,
            request.path if request is not None else "<unparsed>",
            status,
            elapsed,
            extra={"trace_id": trace_id, "endpoint": endpoint},
        )

    # -- submission helpers --------------------------------------------

    def _submission_request(self, request: HTTPRequest) -> Tuple[JobRequest, bool]:
        """Parse a ``POST /v1/jobs`` body into a fully resolved request.

        Returns ``(job_request, deprecated)`` where ``deprecated`` marks a
        wire-schema-1 envelope (its response carries a migration note).
        Resolution order for the tenant: envelope field, payload field,
        ``X-Repro-Tenant`` header, then the server's default; conflicting
        explicit values are a 400 rather than a silent pick.
        """
        envelope = read_envelope(request.json(), "job_request")
        job_request = JobRequest.from_dict(envelope.payload)
        tenant = _merge_field("tenant", envelope.tenant, job_request.tenant)
        if tenant is None:
            tenant = request.headers.get("x-repro-tenant") or None
        priority = _merge_field("priority", envelope.priority, job_request.priority)
        if envelope.deprecated:
            # v1 speakers predate tenancy: default tenant, batch lane.
            tenant, priority = None, "batch"
        job_request = replace(job_request, tenant=tenant, priority=priority)
        resolved = tenant if tenant is not None else self.manager.tenancy.default_tenant
        self._authorize(resolved, request)
        return job_request, envelope.deprecated

    def _authorize(self, tenant: str, request: HTTPRequest) -> None:
        """Enforce the tenant's auth token, when one is configured."""
        spec = self.manager.tenancy.spec_for(tenant)
        if spec.token is None:
            return
        presented = request.headers.get("authorization", "")
        scheme, _, credential = presented.partition(" ")
        if scheme.lower() != "bearer" or not hmac.compare_digest(
            credential.strip(), spec.token
        ):
            raise ProtocolError(
                401, f"tenant {tenant!r} requires a valid Authorization: Bearer token"
            )

    async def _dispatch(self, request: HTTPRequest, trace_id: str) -> bytes:
        path, method = request.path, request.method
        sharded = self.config.shard_count > 1
        local_only = request.query.get("scope") == "local"
        if path == "/v1/healthz":
            _require(method, "GET")
            document = self.manager.health()
            document["draining"] = self._draining
            if sharded:
                document["shard"] = self._shard_info()
            return json_response(
                200, wire_envelope("health", document, trace_id=trace_id)
            )
        if path == "/v1/stats":
            _require(method, "GET")
            document = self.manager.stats_document()
            if sharded:
                document["shard"] = self._shard_info()
                if not local_only:
                    peers = await self._peer_payloads("/v1/stats?scope=local", "stats")
                    document = merge_stats_documents(
                        [document] + peers, expected=self.config.shard_count
                    )
            return json_response(
                200, wire_envelope("stats", document, trace_id=trace_id)
            )
        if path == "/v1/metrics":
            _require(method, "GET")
            document = self.metrics.as_document()
            aggregated = sharded and not local_only
            if aggregated:
                peers = await self._peer_payloads(
                    "/v1/metrics?format=json&scope=local", "metrics"
                )
                document = merge_metrics_documents([document] + peers)
            if request.query.get("format") == "json":
                return json_response(
                    200, wire_envelope("metrics", document, trace_id=trace_id)
                )
            if aggregated:
                return text_response(200, render_metrics_text(document))
            return text_response(200, self.metrics.render_text())
        if path == "/v1/jobs":
            _require(method, "POST")
            injector = get_injector()
            if injector is not None and injector.should("http_500"):
                return _error_response(
                    500,
                    "fault injection: forced server error",
                    code=ErrorCode.INTERNAL,
                    trace_id=trace_id,
                )
            if self._draining:
                retry_after = max(1, int(self.config.drain_timeout))
                return _error_response(
                    503,
                    "server is draining for shutdown; retry against another instance",
                    code=ErrorCode.DRAINING,
                    retry_after=retry_after,
                    extra=(("Retry-After", str(retry_after)),),
                    trace_id=trace_id,
                )
            job_request, deprecated = self._submission_request(request)
            state, coalesced = self.manager.submit(job_request, trace_id=trace_id)
            receipt = {
                "job_id": state.job_id,
                "request_key": state.key,
                "status": state.status.value,
                "coalesced": coalesced,
                "tenant": state.tenant,
                "priority": state.lane,
            }
            if deprecated:
                receipt["deprecation"] = V1_DEPRECATION_NOTE
            return json_response(
                200 if coalesced else 202,
                wire_envelope(
                    "job_accepted",
                    receipt,
                    tenant=state.tenant,
                    priority=state.lane,
                    schema_version=REQUEST_SCHEMA_VERSION,
                    trace_id=trace_id,
                ),
            )
        if path.startswith("/v1/jobs/"):
            _require(method, "GET")
            job_id = path[len("/v1/jobs/") :]
            state = self.manager.jobs.get(job_id)
            if state is None:
                if sharded and not local_only:
                    proxied = await self._proxy_job_status(job_id, request)
                    if proxied is not None:
                        return proxied
                return _error_response(404, f"unknown job {job_id!r}", trace_id=trace_id)
            include_result = request.query.get("result", "1") != "0"
            return json_response(
                200,
                wire_envelope(
                    "job_status",
                    state.view(include_result=include_result),
                    trace_id=trace_id,
                ),
            )
        if path.startswith("/v1/results/"):
            _require(method, "GET")
            key = path[len("/v1/results/") :]
            result = self.manager.result_for(key)
            if result is None and sharded and not local_only:
                result = await self._peer_result(key)
            if result is None:
                return _error_response(
                    404, f"no cached result for key {key!r}", trace_id=trace_id
                )
            return json_response(
                200,
                wire_envelope(
                    "cached_result", {"key": key, "result": result}, trace_id=trace_id
                ),
            )
        return _error_response(404, f"unknown endpoint {method} {path}", trace_id=trace_id)

    # -- cross-shard helpers -------------------------------------------

    def _peer_usable(self, index: int) -> bool:
        """Whether peer ``index`` should be called at all right now.

        Healthy and not-yet-suspect peers are always usable; a suspect peer
        is skipped until :data:`SUSPECT_RETRY_SECONDS` have passed, then one
        probe call is let through (its outcome re-arms or clears suspicion).
        """
        if self._peer_failures.get(index, 0) < SUSPECT_AFTER:
            return True
        since = self._peer_suspect_since.get(index, 0.0)
        return time.monotonic() - since >= SUSPECT_RETRY_SECONDS

    def _peer_ok(self, index: int) -> None:
        """A call to peer ``index`` succeeded: clear any suspicion."""
        if self._peer_failures.get(index, 0) >= SUSPECT_AFTER:
            log.info("peer shard %d recovered; resuming fan-out to it", index)
        self._peer_failures[index] = 0
        self._peer_suspect_since.pop(index, None)
        self._peer_suspect_gauge.labels(str(index)).set(0)

    def _peer_failed(self, index: int) -> None:
        """A call to peer ``index`` failed: count toward (or renew) suspicion."""
        count = self._peer_failures.get(index, 0) + 1
        self._peer_failures[index] = count
        if count >= SUSPECT_AFTER:
            self._peer_suspect_since[index] = time.monotonic()
            self._peer_suspect_gauge.labels(str(index)).set(1)
            if count == SUSPECT_AFTER:
                log.warning(
                    "peer shard %d marked suspect after %d consecutive failures; "
                    "excluding it from fan-out for %.0fs",
                    index,
                    count,
                    SUSPECT_RETRY_SECONDS,
                )

    def _shard_info(self) -> Dict[str, Any]:
        """This shard's place in the group, for health/stats documents."""
        config = self.config
        return {
            "index": config.shard_index,
            "count": config.shard_count,
            "port": shard_port(config.port, config.shard_index),
            "public_port": config.port,
            "so_reuseport": REUSE_PORT_AVAILABLE,
        }

    async def _peer_payloads(self, path: str, kind: str) -> List[Dict[str, Any]]:
        """Fetch every *other* shard's local document at ``path``.

        Unreachable or misbehaving peers are skipped (the merged document's
        ``shards.responding`` records the shortfall): a wedged peer must
        never take the aggregate endpoints down with it.  Suspect peers
        (:meth:`_peer_usable`) are not even dialled until their probe window
        opens; call outcomes feed the suspicion tracking.
        """
        config = self.config
        host = peer_host(config.host)
        indexes = [
            index
            for index in range(config.shard_count)
            if index != config.shard_index and self._peer_usable(index)
        ]
        fetches = [
            fetch_json(host, shard_port(config.port, index), path)
            for index in indexes
        ]
        outcomes = await asyncio.gather(*fetches, return_exceptions=True)
        payloads: List[Dict[str, Any]] = []
        for index, outcome in zip(indexes, outcomes):
            if isinstance(outcome, BaseException):
                log.debug("peer %s fetch failed: %s", kind, outcome)
                self._peer_failed(index)
                continue
            self._peer_ok(index)
            status, body = outcome
            if status != 200 or not isinstance(body, dict):
                continue
            payload = body.get("payload")
            if isinstance(payload, dict):
                payloads.append(payload)
        return payloads

    async def _proxy_job_status(
        self, job_id: str, request: HTTPRequest
    ) -> Optional[bytes]:
        """Serve a status poll for a job another shard owns.

        With SO_REUSEPORT a poll can land on any shard; sharded job IDs
        embed the minting shard's index, so a local miss on a well-formed
        foreign ID is fetched from the owner's peer port and re-served
        verbatim (``scope=local`` stops the owner proxying onward).
        Returns ``None`` -- caller answers 404 -- for unparseable IDs,
        out-of-range owners, or an unreachable owner.
        """
        match = _SHARDED_JOB_ID.match(job_id)
        if match is None:
            return None
        owner = int(match.group(1))
        config = self.config
        if owner == config.shard_index or owner >= config.shard_count:
            return None
        if not self._peer_usable(owner):
            return None
        include = request.query.get("result", "1")
        path = f"/v1/jobs/{job_id}?result={include}&scope=local"
        try:
            status, body = await fetch_json(
                peer_host(config.host), shard_port(config.port, owner), path
            )
        except (OSError, asyncio.TimeoutError, ValueError):
            self._peer_failed(owner)
            return None
        self._peer_ok(owner)
        if not isinstance(body, dict):
            return None
        return json_response(status, body)

    async def _peer_result(self, key: str) -> Optional[Any]:
        """Ask the other shards for a result this shard does not hold.

        Completed payloads are retained per-shard (in the owning shard's
        ``_finished_results``), so a trimmed poller's fallback fetch can
        land anywhere; first peer holding the key wins.
        """
        config = self.config
        host = peer_host(config.host)
        indexes = [
            index
            for index in range(config.shard_count)
            if index != config.shard_index and self._peer_usable(index)
        ]
        fetches = [
            fetch_json(
                host, shard_port(config.port, index), f"/v1/results/{key}?scope=local"
            )
            for index in indexes
        ]
        outcomes = await asyncio.gather(*fetches, return_exceptions=True)
        result: Optional[Any] = None
        for index, outcome in zip(indexes, outcomes):
            if isinstance(outcome, BaseException):
                self._peer_failed(index)
                continue
            self._peer_ok(index)
            if result is not None:
                continue
            status, body = outcome
            if status != 200 or not isinstance(body, dict):
                continue
            payload = body.get("payload")
            if isinstance(payload, dict) and payload.get("result") is not None:
                result = payload["result"]
        return result


def _merge_field(name: str, envelope_value: Any, payload_value: Any) -> Any:
    """Combine the envelope-level and payload-level copy of a field."""
    if envelope_value is None:
        return payload_value
    if payload_value is not None and payload_value != envelope_value:
        raise ProtocolError(
            400,
            f"envelope {name}={envelope_value!r} conflicts with "
            f"payload {name}={payload_value!r}",
        )
    return envelope_value


def _require(method: str, expected: str) -> None:
    if method != expected:
        raise ProtocolError(405, f"method {method} not allowed (use {expected})")


def _with_trace_header(response: bytes, trace_id: str) -> bytes:
    """Insert ``X-Repro-Trace-Id`` right after the status line.

    Central injection means every response -- success, error envelope, even
    a 500 from an unexpected exception -- carries the request's trace ID.
    """
    head, separator, rest = response.partition(b"\r\n")
    header = f"{TRACE_ID_HEADER}: {trace_id}\r\n".encode("latin-1")
    return head + separator + header + rest


def _endpoint_label(request: Optional[HTTPRequest]) -> str:
    """A bounded-cardinality endpoint label for the request metrics."""
    if request is None:
        return "unparsed"
    path = request.path
    if path in ("/v1/healthz", "/v1/stats", "/v1/metrics", "/v1/jobs"):
        return path
    if path.startswith("/v1/jobs/"):
        return "/v1/jobs/{id}"
    if path.startswith("/v1/results/"):
        return "/v1/results/{key}"
    return "other"


def _error_response(
    status: int,
    message: str,
    code: Optional[ErrorCode] = None,
    tenant: Optional[str] = None,
    retry_after: Optional[float] = None,
    extra=(),
    trace_id: Optional[str] = None,
) -> bytes:
    """An ``error`` envelope with the structured taxonomy fields."""
    if code is None:
        code = _CODE_FOR_STATUS.get(status, ErrorCode.INTERNAL)
    payload: Dict[str, Any] = {"status": status, "code": code.value, "message": message}
    if tenant is not None:
        payload["tenant"] = tenant
    if retry_after is not None:
        payload["retry_after"] = retry_after
    return json_response(
        status, wire_envelope("error", payload, trace_id=trace_id), extra
    )


async def run_service(config: ServiceConfig) -> None:
    """Start the service and serve until cancelled (the ``serve`` CLI verb).

    SIGTERM triggers a graceful shutdown: in-flight jobs drain (bounded by
    ``config.drain_timeout``), new submissions get 503 + ``Retry-After``
    meanwhile, the journal is flushed on stop, and the process exits 0.
    """
    service = ReproService(config)
    await service.start()
    host, port = service.address
    cache = config.cache_dir or "disabled"
    tenancy = service.manager.tenancy
    tenants = (
        ",".join(spec.name for spec in tenancy.tenants) if tenancy.tenants else "open"
    )
    shard = (
        f", shard={config.shard_index}/{config.shard_count}"
        if config.shard_count > 1
        else ""
    )
    log.info(
        "serving on http://%s:%d (workers=%d, sim-jobs=%d, queue-limit=%d, "
        "cache=%s, tenants=%s, wire-schema=%d%s)",
        host,
        port,
        config.workers,
        config.sim_jobs,
        config.queue_limit,
        cache,
        tenants,
        WIRE_SCHEMA_VERSION,
        shard,
    )
    loop = asyncio.get_running_loop()
    terminated = asyncio.Event()
    try:
        loop.add_signal_handler(signal.SIGTERM, terminated.set)
        sigterm_handled = True
    except (NotImplementedError, RuntimeError, ValueError):
        # Non-main thread or a platform without signal-handler support
        # (Windows event loops): fall back to cancellation-only shutdown.
        sigterm_handled = False
    serve_task = asyncio.ensure_future(service.serve_forever())
    stop_task = asyncio.ensure_future(terminated.wait())
    try:
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        if terminated.is_set():
            log.info("SIGTERM received: beginning graceful drain")
            await service.drain(config.drain_timeout)
    except asyncio.CancelledError:
        pass
    finally:
        serve_task.cancel()
        stop_task.cancel()
        await asyncio.gather(serve_task, stop_task, return_exceptions=True)
        if sigterm_handled:
            loop.remove_signal_handler(signal.SIGTERM)
        await service.stop()


def serve(config: ServiceConfig) -> None:
    """Blocking entry point; returns cleanly on Ctrl-C."""
    try:
        asyncio.run(run_service(config))
    except KeyboardInterrupt:
        log.info("server stopped")

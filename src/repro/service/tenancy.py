"""Multi-tenant admission, weighted fair scheduling and usage accounting.

This module is the service's resource-management layer.  It owns three
concerns, kept free of any HTTP or job-execution detail so they can be unit
tested in isolation:

* **Tenant configuration** -- :class:`TenantSpec` (weight, quotas, optional
  auth token) and :class:`TenancyConfig` (the named tenants, the default
  tenant, whether unknown names are admitted).  A config loads from a small
  JSON file (``repro serve --tenants tenants.json``); with no file the
  service runs *open*: every tenant name is accepted with default limits,
  and unlabelled submissions land on the ``default`` tenant -- exactly the
  pre-tenancy behaviour.

* **Weighted fair scheduling** -- :class:`TenantScheduler`, a stride
  scheduler over per-tenant queues.  Each tenant carries a *pass* value
  advanced by ``stride = STRIDE_SCALE / weight`` per dispatched job, and the
  runnable tenant with the smallest pass goes next -- so under saturation
  tenants receive work in proportion to their configured weights.  Two
  **priority lanes** sit above the weighting: every tenant has an
  ``interactive`` and a ``batch`` queue, and the scheduler drains all
  interactive work (weighted-fair among tenants) before any batch work, so
  short quick-suite jobs are never stuck behind a flooding campaign.  A
  tenant waking from idle has its pass forwarded to the current virtual
  time, so sleeping never banks credit that would later starve the others.

* **Usage and latency accounting** -- :class:`TenantAccounting`: per-tenant
  admission/rejection/completion counters, simulations executed vs cache
  hits, and bounded reservoirs of queue-wait and service-time samples with
  p50/p95/p99 summaries.  The records live in a
  :class:`~repro.obs.metrics.MetricsRegistry` (one counter/summary family
  per concern, labelled by tenant), so the same numbers serve both
  ``GET /v1/stats`` (via :meth:`TenantAccounting.as_document`) and the
  Prometheus exposition at ``GET /v1/metrics`` -- there is exactly one
  counter system, not two.

All scheduler state is touched only from the server's event-loop thread
(submission and worker dispatch both happen there), so there is no locking.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, Iterable, Mapping, Optional, Tuple, TypeVar

from repro.common.errors import ConfigurationError
from repro.exp.request import PRIORITY_LANES, validate_tenant_name
from repro.obs.metrics import MetricsRegistry, Reservoir

_T = TypeVar("_T")

#: The tenant unlabelled (and all wire-schema-1) submissions map to.
DEFAULT_TENANT = "default"

#: The two scheduling lanes, highest priority first (re-exported from the
#: request layer, which owns the wire vocabulary).
LANE_INTERACTIVE, LANE_BATCH = PRIORITY_LANES

#: Pass-value increment for a weight-1.0 tenant per dispatched job.  The
#: scale is arbitrary (only pass *ratios* matter); a round number keeps the
#: values readable in debugger sessions and stats dumps.
STRIDE_SCALE = 1_000_000.0

#: Bounded reservoir size for latency samples (newest kept).
LATENCY_WINDOW = 1024


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's configured identity: weight, quotas, optional token.

    ``None`` quotas mean "bounded only by the server-wide limits" -- the
    right default for a single-tenant deployment, where per-tenant admission
    must degenerate to the old global behaviour.
    """

    name: str
    #: Relative share of the worker pool under saturation.
    weight: float = 1.0
    #: Max jobs this tenant may have queued (excluding running); ``None`` =
    #: only the server-wide queue limit applies.
    max_queued: Optional[int] = None
    #: Max jobs this tenant may have running at once; ``None`` = only the
    #: worker count applies.
    max_inflight: Optional[int] = None
    #: Shared-secret auth token; when set, submissions for this tenant must
    #: carry ``Authorization: Bearer <token>``.
    token: Optional[str] = None

    def __post_init__(self) -> None:
        validate_tenant_name(self.name)
        if not (self.weight > 0.0):
            raise ConfigurationError(
                f"tenant {self.name!r}: weight must be positive, got {self.weight}"
            )
        for attr in ("max_queued", "max_inflight"):
            value = getattr(self, attr)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"tenant {self.name!r}: {attr} must be >= 1, got {value}"
                )
        if self.token is not None and (not isinstance(self.token, str) or not self.token):
            raise ConfigurationError(f"tenant {self.name!r}: token must be a non-empty string")

    @classmethod
    def from_dict(cls, name: str, data: Mapping[str, Any]) -> "TenantSpec":
        unknown = set(data) - {"weight", "max_queued", "max_inflight", "token"}
        if unknown:
            raise ConfigurationError(
                f"tenant {name!r}: unknown settings {sorted(unknown)}"
            )
        return cls(
            name=name,
            weight=float(data.get("weight", 1.0)),
            max_queued=data.get("max_queued"),
            max_inflight=data.get("max_inflight"),
            token=data.get("token"),
        )


@dataclass(frozen=True)
class TenancyConfig:
    """The server's tenant roster and admission policy."""

    tenants: Tuple[TenantSpec, ...] = ()
    default_tenant: str = DEFAULT_TENANT
    #: When ``True`` (the open, zero-config default) an unconfigured tenant
    #: name is admitted with default limits; when ``False`` it is a 400.
    allow_unknown: bool = True

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.tenants]
        if len(names) != len(set(names)):
            raise ConfigurationError(f"duplicate tenant names in config: {names}")
        validate_tenant_name(self.default_tenant)
        if not self.allow_unknown and self.default_tenant not in names:
            raise ConfigurationError(
                f"default tenant {self.default_tenant!r} must be configured when "
                "unknown tenants are rejected"
            )

    @classmethod
    def open(cls) -> "TenancyConfig":
        """The zero-config policy: any tenant, default limits, no auth."""
        return cls()

    @classmethod
    def from_dict(cls, data: Any) -> "TenancyConfig":
        if not isinstance(data, Mapping):
            raise ConfigurationError(
                f"expected a tenancy config mapping, got {type(data).__name__}"
            )
        unknown = set(data) - {"tenants", "default_tenant", "allow_unknown"}
        if unknown:
            raise ConfigurationError(f"unknown tenancy settings {sorted(unknown)}")
        tenants_data = data.get("tenants", {})
        if not isinstance(tenants_data, Mapping):
            raise ConfigurationError("tenancy 'tenants' must be a mapping of name -> settings")
        tenants = tuple(
            TenantSpec.from_dict(name, spec if isinstance(spec, Mapping) else {})
            for name, spec in tenants_data.items()
        )
        return cls(
            tenants=tenants,
            default_tenant=data.get("default_tenant", DEFAULT_TENANT),
            allow_unknown=bool(data.get("allow_unknown", True)),
        )

    @classmethod
    def from_file(cls, path: str) -> "TenancyConfig":
        try:
            data = json.loads(Path(path).read_text())
        except OSError as error:
            raise ConfigurationError(f"cannot read tenants file {path}: {error}") from None
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"tenants file {path} is not valid JSON: {error}") from None
        return cls.from_dict(data)

    def spec_for(self, name: str) -> TenantSpec:
        """Resolve a tenant name to its spec (default limits when open)."""
        validate_tenant_name(name)
        for spec in self.tenants:
            if spec.name == name:
                return spec
        if not self.allow_unknown:
            raise ConfigurationError(
                f"unknown tenant {name!r} (this server admits only configured tenants)"
            )
        return TenantSpec(name=name)


#: The historical name for the bounded latency reservoir, kept as an alias:
#: the class moved to the observability layer so summaries and the tenancy
#: stats share one implementation.
LatencyWindow = Reservoir

#: The per-tenant job lifecycle events :meth:`TenantAccounting.inc` accepts.
JOB_EVENTS = (
    "admitted",
    "coalesced",
    "rejected_quota",
    "rejected_capacity",
    "dispatched",
    "completed",
    "failed",
)


class TenantAccounting:
    """Per-tenant usage counters and latency reservoirs, registry-backed.

    Each instance is a tenant-labelled view over four metric families in a
    :class:`~repro.obs.metrics.MetricsRegistry`:

    * ``repro_tenant_jobs_total{tenant,event}`` -- job lifecycle counters,
    * ``repro_tenant_simulations_total{tenant,kind}`` -- executed vs
      cache-hit simulations,
    * ``repro_tenant_queue_wait_seconds{tenant}`` and
      ``repro_tenant_service_seconds{tenant}`` -- latency summaries.

    The historical counter attributes (``admitted``, ``dispatched``, ...)
    remain readable as properties and :meth:`as_document` preserves the
    ``GET /v1/stats`` wire form exactly; writes go through :meth:`inc` /
    :meth:`add_sims` / ``queue_wait.record`` so the Prometheus exposition
    and the stats document can never disagree.
    """

    __slots__ = ("tenant", "_jobs", "_sims", "queue_wait", "service_time")

    def __init__(self, tenant: str = DEFAULT_TENANT, metrics: Optional[MetricsRegistry] = None) -> None:
        registry = metrics if metrics is not None else MetricsRegistry()
        self.tenant = tenant
        jobs = registry.counter(
            "repro_tenant_jobs_total",
            "Per-tenant job lifecycle events",
            ("tenant", "event"),
        )
        self._jobs = {event: jobs.labels(tenant=tenant, event=event) for event in JOB_EVENTS}
        sims = registry.counter(
            "repro_tenant_simulations_total",
            "Per-tenant simulations by outcome (executed vs cache hit)",
            ("tenant", "kind"),
        )
        self._sims = {
            kind: sims.labels(tenant=tenant, kind=kind) for kind in ("executed", "cache_hit")
        }
        self.queue_wait: Reservoir = registry.summary(
            "repro_tenant_queue_wait_seconds",
            "Seconds jobs waited in the tenant's queue before dispatch",
            ("tenant",),
            limit=LATENCY_WINDOW,
        ).labels(tenant=tenant)
        self.service_time: Reservoir = registry.summary(
            "repro_tenant_service_seconds",
            "Seconds jobs spent executing for this tenant",
            ("tenant",),
            limit=LATENCY_WINDOW,
        ).labels(tenant=tenant)

    def inc(self, event: str, amount: int = 1) -> None:
        """Count one job lifecycle event (a :data:`JOB_EVENTS` member)."""
        self._jobs[event].inc(amount)

    def add_sims(self, executed: int, cache_hits: int) -> None:
        """Charge a finished job's simulation counts to the tenant."""
        if executed:
            self._sims["executed"].inc(executed)
        if cache_hits:
            self._sims["cache_hit"].inc(cache_hits)

    def _event(self, event: str) -> int:
        return int(self._jobs[event].value)

    @property
    def admitted(self) -> int:
        return self._event("admitted")

    @property
    def coalesced(self) -> int:
        return self._event("coalesced")

    @property
    def rejected_quota(self) -> int:
        return self._event("rejected_quota")

    @property
    def rejected_capacity(self) -> int:
        return self._event("rejected_capacity")

    @property
    def dispatched(self) -> int:
        return self._event("dispatched")

    @property
    def completed(self) -> int:
        return self._event("completed")

    @property
    def failed(self) -> int:
        return self._event("failed")

    @property
    def sims_executed(self) -> int:
        return int(self._sims["executed"].value)

    @property
    def cache_hits(self) -> int:
        return int(self._sims["cache_hit"].value)

    @property
    def service_seconds(self) -> float:
        return self.service_time.total

    def as_document(self) -> Dict[str, Any]:
        return {
            "jobs": {event: self._event(event) for event in JOB_EVENTS},
            "sims": {"executed": self.sims_executed, "cache_hits": self.cache_hits},
            "queue_wait_seconds": self.queue_wait.snapshot(),
            "service_seconds": self.service_time.snapshot(),
        }


class _TenantRuntime:
    """One tenant's live scheduler state (spec + queues + stride position)."""

    __slots__ = ("spec", "lanes", "inflight", "pass_value", "accounting")

    def __init__(self, spec: TenantSpec, metrics: Optional[MetricsRegistry] = None) -> None:
        self.spec = spec
        self.lanes: Dict[str, Deque[Any]] = {lane: deque() for lane in PRIORITY_LANES}
        self.inflight = 0
        self.pass_value = 0.0
        self.accounting = TenantAccounting(spec.name, metrics)

    @property
    def stride(self) -> float:
        return STRIDE_SCALE / self.spec.weight

    def queued(self) -> int:
        return sum(len(lane) for lane in self.lanes.values())

    def idle(self) -> bool:
        return self.inflight == 0 and self.queued() == 0

    def runnable_in(self, lane: str) -> bool:
        if not self.lanes[lane]:
            return False
        cap = self.spec.max_inflight
        return cap is None or self.inflight < cap


class TenantScheduler:
    """Stride-scheduled weighted fair queueing over per-tenant lanes.

    The scheduler stores opaque items (the job manager hands it
    ``JobState`` objects) and answers "whose turn is it?".  The caller owns
    dispatch and completion, calling :meth:`pick` / :meth:`release` around
    each execution.
    """

    def __init__(
        self, tenancy: TenancyConfig, metrics: Optional[MetricsRegistry] = None
    ) -> None:
        self.tenancy = tenancy
        #: The registry every tenant's accounting reports into (a private
        #: one when the caller brings none, so standalone schedulers in
        #: tests never share counters).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._tenants: Dict[str, _TenantRuntime] = {}
        #: Virtual time: the pass value of the most recent dispatch.  A
        #: tenant waking from idle starts here, not at its stale pass.
        self._virtual = 0.0
        # Materialise configured tenants eagerly so /v1/stats lists them
        # (with zeroed counters) before their first submission.
        for spec in tenancy.tenants:
            self._tenants[spec.name] = _TenantRuntime(spec, self.metrics)

    # -- tenant access -------------------------------------------------

    def runtime(self, name: str) -> _TenantRuntime:
        """The live state for ``name``, created on first contact."""
        runtime = self._tenants.get(name)
        if runtime is None:
            runtime = _TenantRuntime(self.tenancy.spec_for(name), self.metrics)
            self._tenants[name] = runtime
        return runtime

    def accounting(self, name: str) -> TenantAccounting:
        return self.runtime(name).accounting

    def tenants(self) -> Iterable[_TenantRuntime]:
        return self._tenants.values()

    # -- queue state ---------------------------------------------------

    def queued_total(self) -> int:
        return sum(runtime.queued() for runtime in self._tenants.values())

    def inflight_total(self) -> int:
        return sum(runtime.inflight for runtime in self._tenants.values())

    # -- scheduling ----------------------------------------------------

    def enqueue(self, name: str, lane: str, item: _T) -> None:
        """Queue ``item`` on the tenant's lane (quota checks are the
        caller's job -- the scheduler never refuses work)."""
        if lane not in PRIORITY_LANES:
            raise ConfigurationError(f"unknown lane {lane!r}")
        runtime = self.runtime(name)
        if runtime.idle():
            # Forward an idle tenant to the current virtual time: sleeping
            # must not bank credit that would later monopolise the pool.
            runtime.pass_value = max(runtime.pass_value, self._virtual)
        runtime.lanes[lane].append(item)

    def pick(self) -> Optional[Tuple[str, Any]]:
        """Dispatch the next item, or ``None`` when nothing is runnable.

        All interactive work drains before any batch work; within a lane the
        runnable tenant with the smallest pass value wins (ties broken by
        name for determinism).  The winner's pass advances by its stride and
        its in-flight count is charged -- pair every pick with a
        :meth:`release`.
        """
        for lane in PRIORITY_LANES:
            best: Optional[_TenantRuntime] = None
            for name in sorted(self._tenants):
                runtime = self._tenants[name]
                if not runtime.runnable_in(lane):
                    continue
                if best is None or runtime.pass_value < best.pass_value:
                    best = runtime
            if best is not None:
                item = best.lanes[lane].popleft()
                self._virtual = max(self._virtual, best.pass_value)
                best.pass_value += best.stride
                best.inflight += 1
                best.accounting.inc("dispatched")
                return best.spec.name, item
        return None

    def release(self, name: str) -> None:
        """Return a dispatched job's in-flight slot (on completion/failure)."""
        runtime = self.runtime(name)
        if runtime.inflight <= 0:
            raise ConfigurationError(f"tenant {name!r} has no in-flight job to release")
        runtime.inflight -= 1

    # -- reporting -----------------------------------------------------

    def work_shares(self) -> Dict[str, float]:
        """Each tenant's fraction of all dispatched jobs (empty when none)."""
        total = sum(rt.accounting.dispatched for rt in self._tenants.values())
        if total == 0:
            return {name: 0.0 for name in self._tenants}
        return {
            name: rt.accounting.dispatched / total
            for name, rt in self._tenants.items()
        }

    def stats_document(self) -> Dict[str, Any]:
        """The per-tenant section of ``GET /v1/stats``."""
        shares = self.work_shares()
        document: Dict[str, Any] = {}
        for name in sorted(self._tenants):
            runtime = self._tenants[name]
            spec = runtime.spec
            entry = runtime.accounting.as_document()
            entry.update(
                {
                    "weight": spec.weight,
                    "max_queued": spec.max_queued,
                    "max_inflight": spec.max_inflight,
                    "auth_required": spec.token is not None,
                    "queued": runtime.queued(),
                    "queued_by_lane": {
                        lane: len(queue) for lane, queue in runtime.lanes.items()
                    },
                    "inflight": runtime.inflight,
                    "work_share": shares[name],
                }
            )
            document[name] = entry
        return document

"""Minimal HTTP/1.1 framing over asyncio streams.

The service deliberately avoids web frameworks: one request per connection
(``Connection: close``), JSON bodies, and only what the four ``/v1``
endpoints need -- a request line, headers, an optional ``Content-Length``
body.  :func:`read_request` parses an incoming request from a stream reader;
:func:`json_response` renders a complete response (status line + headers +
JSON body) as bytes ready to write.

Malformed input raises :class:`ProtocolError`, which carries the HTTP status
the server should answer with; the connection handler translates it into an
error envelope instead of dropping the connection.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Sequence, Tuple

from urllib.parse import parse_qsl, unquote, urlsplit

#: Upper bound on accepted request bodies; large batches should be split.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Bounds on the header section, so a client streaming header lines cannot
#: grow one handler's memory without limit before the read timeout fires.
MAX_HEADER_COUNT = 100
MAX_HEADER_BYTES = 64 * 1024

#: Reason phrases for the statuses the service emits.
REASONS: Dict[int, str] = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """A malformed or unacceptable HTTP request (maps to a 4xx response)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HTTPRequest:
    """One parsed request: method, decoded path, query, headers and body."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> Any:
        """Parse the body as JSON, raising a 400 :class:`ProtocolError` if bad."""
        if not self.body:
            raise ProtocolError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ProtocolError(400, f"request body is not valid JSON: {error}") from None


async def read_request(reader) -> Optional[HTTPRequest]:
    """Read one HTTP request from ``reader``; ``None`` if the peer hung up.

    Raises :class:`ProtocolError` on malformed framing (bad request line,
    bad ``Content-Length``, oversized or truncated body).
    """
    try:
        request_line = await reader.readline()
    except ValueError:  # line exceeded the stream reader's limit
        raise ProtocolError(400, "request line too long") from None
    if not request_line or not request_line.strip():
        return None
    parts = request_line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise ProtocolError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        try:
            line = await reader.readline()
        except ValueError:
            raise ProtocolError(400, "header line too long") from None
        if line in (b"\r\n", b"\n", b""):
            break
        header_bytes += len(line)
        if len(headers) >= MAX_HEADER_COUNT or header_bytes > MAX_HEADER_BYTES:
            raise ProtocolError(400, "too many request headers")
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise ProtocolError(400, "malformed Content-Length") from None
    if length < 0:
        raise ProtocolError(400, "negative Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except Exception:  # IncompleteReadError, connection reset
            raise ProtocolError(400, "request body truncated") from None
    split = urlsplit(target)
    return HTTPRequest(
        method=method,
        path=unquote(split.path),
        query=dict(parse_qsl(split.query)),
        headers=headers,
        body=body,
    )


def _render_response(
    status: int,
    body: bytes,
    content_type: str,
    extra_headers: Sequence[Tuple[str, str]] = (),
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = "\r\n".join(lines) + "\r\n\r\n"
    return head.encode("latin-1") + body


def json_response(
    status: int, payload: Any, extra_headers: Sequence[Tuple[str, str]] = ()
) -> bytes:
    """Render a complete JSON response (headers + body) as bytes."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _render_response(status, body, "application/json", extra_headers)


def text_response(
    status: int, text: str, extra_headers: Sequence[Tuple[str, str]] = ()
) -> bytes:
    """Render a plain-text response (the Prometheus exposition content type)."""
    return _render_response(
        status,
        text.encode("utf-8"),
        "text/plain; version=0.0.4; charset=utf-8",
        extra_headers,
    )

"""Multi-process scale-out: the shard supervisor and cross-shard merging.

``repro serve --shards N`` forks N full server processes ("shards") over the
same shared :class:`~repro.exp.cache.ResultCache` directory.  The port
layout is fixed and platform-independent:

* every shard binds its **own well-known port** ``base + 1 + index`` (the
  peer address used for aggregation, status-poll proxying, and the load
  driver's round-robin fallback), and
* the **public base port** is bound by *all* shards with ``SO_REUSEPORT``
  where the platform has it (the kernel load-balances accepted connections
  across the shard processes), otherwise by shard 0 alone.

Shards do not share memory: each runs its own :class:`JobManager`, metrics
registry and scheduler, and only the on-disk result cache is common.  The
cross-shard views (``/v1/stats``, ``/v1/metrics``) are therefore assembled
at request time -- the serving shard fetches its peers' *local* documents
over HTTP (``?scope=local`` suppresses recursion) and merges them with the
pure functions in this module, which are deliberately free of any I/O so
the merge semantics are unit-testable without processes:

* counters, queue depths and per-tenant job/sim totals **sum**;
* uptime and the constant ``repro_build_info`` gauge take the **max**;
* latency summaries merge count-weighted: lifetime counts and sums are
  exact, while the merged p50/p95/p99 are count-weighted averages of the
  per-shard percentiles -- an approximation (documented in USAGE.md), since
  the raw reservoirs never leave their shard.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import signal
from dataclasses import replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError
from repro.faults import get_injector
from repro.obs.logs import get_logger
from repro.obs.metrics import (
    SUMMARY_QUANTILES,
    _escape_help,
    _format_value,
    _render_labels,
)

log = get_logger("service.shards")

#: How long one peer fetch may take before the aggregating shard gives up
#: on that peer and serves a partial merge (``shards.responding`` says so).
PEER_FETCH_TIMEOUT = 5.0

#: The percentile fields a summary snapshot carries, with the quantile each
#: answers (mirrors :data:`repro.obs.metrics.SUMMARY_QUANTILES`).
_SNAPSHOT_PERCENTILES = {0.50: "p50", 0.95: "p95", 0.99: "p99"}

#: Gauges whose cross-shard aggregate is the max, not the sum: uptime is a
#: property of the group (oldest shard), and ``repro_build_info`` is the
#: constant 1 regardless of how many shards report it.
_GAUGES_MERGED_BY_MAX = frozenset({"repro_uptime_seconds", "repro_build_info"})


# -- the port layout ----------------------------------------------------


def shard_port(base_port: int, index: int) -> int:
    """The well-known per-shard port: ``base + 1 + index``."""
    return base_port + 1 + index


def shard_ports(base_port: int, count: int) -> List[int]:
    """Every shard's well-known port, in shard order."""
    return [shard_port(base_port, index) for index in range(count)]


def peer_host(host: str) -> str:
    """The address peers are dialled on (wildcard binds dial loopback)."""
    if host in ("", "0.0.0.0", "::"):
        return "127.0.0.1"
    return host


# -- the peer fetch -----------------------------------------------------


async def fetch_json(
    host: str,
    port: int,
    path: str,
    timeout: float = PEER_FETCH_TIMEOUT,
    headers: Sequence[Tuple[str, str]] = (),
) -> Tuple[int, Any]:
    """One ``GET`` against a peer shard; returns ``(status, parsed body)``.

    The service speaks one-request-per-connection HTTP (``Connection:
    close``), so the whole response is simply read to EOF.  Raises
    ``OSError`` / ``asyncio.TimeoutError`` on connection trouble and
    ``ValueError`` on an unparseable response -- callers treat any of those
    as "peer not responding" and merge without it.

    This is also the chaos harness's peer-level injection point: an active
    ``drop_peer`` fault fails the call before dialling (exactly what a dead
    peer looks like to the caller) and ``delay_peer`` stalls it first
    (exercising the fetch timeout and the suspect-peer accounting).
    """
    injector = get_injector()
    if injector is not None:
        delay = injector.peer_delay()
        if delay > 0:
            await asyncio.sleep(delay)
        if injector.should("drop_peer"):
            raise OSError(f"fault injection: peer call to {host}:{port} dropped")
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        lines = [f"GET {path} HTTP/1.1", f"Host: {host}:{port}", "Connection: close"]
        lines.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, BrokenPipeError):
            pass
    head, _, body = raw.partition(b"\r\n\r\n")
    status_parts = head.split(b"\r\n", 1)[0].split()
    if len(status_parts) < 2 or not status_parts[0].startswith(b"HTTP/"):
        raise ValueError(f"malformed response from {host}:{port}")
    status = int(status_parts[1])
    payload = json.loads(body.decode("utf-8")) if body else None
    return status, payload


# -- merging ------------------------------------------------------------


def merge_snapshots(snapshots: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge latency-summary snapshots (``count``/``mean``/p50/p95/p99/max).

    Counts and means (hence lifetime sums) merge exactly; the merged
    percentiles are count-weighted averages of the per-shard percentiles,
    an approximation that is exact when the shards saw similar
    distributions and never outside the min..max of the inputs.
    """
    total = sum(int(s.get("count", 0)) for s in snapshots)
    if total == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}

    def weighted(name: str) -> float:
        return (
            sum(float(s.get(name, 0.0)) * int(s.get("count", 0)) for s in snapshots)
            / total
        )

    return {
        "count": total,
        "mean": weighted("mean"),
        "p50": weighted("p50"),
        "p95": weighted("p95"),
        "p99": weighted("p99"),
        "max": max(float(s.get("max", 0.0)) for s in snapshots),
    }


def _merge_tenant_entries(entries: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Merge one tenant's per-shard stats entries (spec fields from the
    first shard -- the roster is identical across shards by construction)."""
    first = entries[0]
    job_events = sorted({event for entry in entries for event in entry.get("jobs", {})})
    lanes = sorted(
        {lane for entry in entries for lane in entry.get("queued_by_lane", {})}
    )
    return {
        "jobs": {
            event: sum(int(entry.get("jobs", {}).get(event, 0)) for entry in entries)
            for event in job_events
        },
        "sims": {
            field: sum(int(entry.get("sims", {}).get(field, 0)) for entry in entries)
            for field in ("executed", "cache_hits")
        },
        "queue_wait_seconds": merge_snapshots(
            [entry.get("queue_wait_seconds", {}) for entry in entries]
        ),
        "service_seconds": merge_snapshots(
            [entry.get("service_seconds", {}) for entry in entries]
        ),
        "weight": first.get("weight"),
        "max_queued": first.get("max_queued"),
        "max_inflight": first.get("max_inflight"),
        "auth_required": first.get("auth_required"),
        "queued": sum(int(entry.get("queued", 0)) for entry in entries),
        "queued_by_lane": {
            lane: sum(
                int(entry.get("queued_by_lane", {}).get(lane, 0)) for entry in entries
            )
            for lane in lanes
        },
        "inflight": sum(int(entry.get("inflight", 0)) for entry in entries),
        "work_share": 0.0,  # recomputed over the merged totals below
    }


def merge_stats_documents(
    documents: Sequence[Dict[str, Any]], expected: Optional[int] = None
) -> Dict[str, Any]:
    """Merge per-shard ``/v1/stats`` documents into the group-wide view.

    ``expected`` is the configured shard count; ``shards.responding`` <
    ``shards.count`` tells a scraper the merge is partial (a peer was down
    or slow).  Work shares are recomputed over the *summed* dispatch
    counts, so the merged shares are exact even though each shard computed
    its own share over local traffic only.
    """
    documents = [document for document in documents if document]
    if not documents:
        raise ConfigurationError("no stats documents to merge")
    merged: Dict[str, Any] = {
        "schema_version": documents[0].get("schema_version"),
        "uptime_seconds": max(float(d.get("uptime_seconds", 0.0)) for d in documents),
        "queue": {
            field: sum(int(d.get("queue", {}).get(field, 0)) for d in documents)
            for field in ("depth", "limit", "running", "workers")
        },
        "default_tenant": documents[0].get("default_tenant"),
    }
    totals: Dict[str, Any] = {
        field: sum(int(d.get("totals", {}).get(field, 0)) for d in documents)
        for field in ("submitted", "coalesced", "completed", "failed")
    }
    totals["rejections"] = {
        field: sum(
            int(d.get("totals", {}).get("rejections", {}).get(field, 0))
            for d in documents
        )
        for field in ("overloaded", "tenant_quota_exceeded")
    }
    merged["totals"] = totals
    names = sorted({name for d in documents for name in d.get("tenants", {})})
    tenants = {
        name: _merge_tenant_entries(
            [d["tenants"][name] for d in documents if name in d.get("tenants", {})]
        )
        for name in names
    }
    dispatched_total = sum(
        entry["jobs"].get("dispatched", 0) for entry in tenants.values()
    )
    for entry in tenants.values():
        entry["work_share"] = (
            entry["jobs"].get("dispatched", 0) / dispatched_total
            if dispatched_total
            else 0.0
        )
    merged["tenants"] = tenants
    merged["shards"] = {
        "count": expected if expected is not None else len(documents),
        "responding": len(documents),
        "per_shard": [
            {
                "shard": d.get("shard", {}).get("index", position),
                "uptime_seconds": float(d.get("uptime_seconds", 0.0)),
                "queue_depth": int(d.get("queue", {}).get("depth", 0)),
                "submitted": int(d.get("totals", {}).get("submitted", 0)),
                "completed": int(d.get("totals", {}).get("completed", 0)),
            }
            for position, d in enumerate(documents)
        ],
    }
    return merged


def merge_metrics_documents(
    documents: Sequence[Dict[str, Any]]
) -> Dict[str, Any]:
    """Merge per-shard ``/v1/metrics?format=json`` documents.

    Counters and summaries sum (summaries via :func:`merge_snapshots`);
    gauges sum too (queue depth, in-flight and queue-limit aggregates are
    the meaningful group totals) except the few in
    :data:`_GAUGES_MERGED_BY_MAX`.  Samples merge per label set, so
    per-endpoint and per-tenant series stay distinct.
    """
    families: Dict[str, Dict[str, Any]] = {}
    for document in documents:
        if not document:
            continue
        for family in document.get("metrics", []):
            name = family["name"]
            entry = families.setdefault(
                name,
                {
                    "type": family.get("type", "untyped"),
                    "help": family.get("help", ""),
                    "samples": {},
                },
            )
            for sample in family.get("samples", []):
                key = tuple(sorted(sample.get("labels", {}).items()))
                entry["samples"].setdefault(key, []).append(sample)
    metrics: List[Dict[str, Any]] = []
    for name in sorted(families):
        entry = families[name]
        samples: List[Dict[str, Any]] = []
        for key in sorted(entry["samples"]):
            group = entry["samples"][key]
            labels = dict(key)
            if entry["type"] == "summary":
                samples.append({"labels": labels, **merge_snapshots(group)})
            else:
                values = [float(sample.get("value", 0.0)) for sample in group]
                if entry["type"] == "gauge" and name in _GAUGES_MERGED_BY_MAX:
                    value = max(values)
                else:
                    value = sum(values)
                samples.append({"labels": labels, "value": value})
        metrics.append(
            {
                "name": name,
                "type": entry["type"],
                "help": entry["help"],
                "samples": samples,
            }
        )
    return {"metrics": metrics}


def render_metrics_text(document: Dict[str, Any]) -> str:
    """Render a (merged) metrics JSON document as Prometheus text.

    Mirrors :meth:`MetricsRegistry.render_text`, but driven by the JSON
    document instead of live registry objects -- the merged cross-shard
    document has no registry behind it.  Summary quantiles come from the
    snapshot's p50/p95/p99 fields and ``_sum`` is reconstructed as
    ``mean * count`` (exact: both merged exactly).
    """
    lines: List[str] = []
    for family in document.get("metrics", []):
        name = family["name"]
        lines.append(f"# HELP {name} {_escape_help(family.get('help', ''))}")
        lines.append(f"# TYPE {name} {family.get('type', 'untyped')}")
        for sample in family.get("samples", []):
            labels = sorted(sample.get("labels", {}).items())
            if family.get("type") == "summary":
                for quantile in SUMMARY_QUANTILES:
                    field = _SNAPSHOT_PERCENTILES[quantile]
                    quantiled = labels + [("quantile", _format_value(quantile))]
                    lines.append(
                        f"{name}{_render_labels(quantiled)} "
                        f"{_format_value(float(sample.get(field, 0.0)))}"
                    )
                count = int(sample.get("count", 0))
                lines.append(f"{name}_count{_render_labels(labels)} {count}")
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(float(sample.get('mean', 0.0)) * count)}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(float(sample.get('value', 0.0)))}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# -- the supervisor -----------------------------------------------------


def _shard_main(config: Any, log_level: str, log_json: bool) -> None:
    """Entry point of one shard process (module-level for spawn pickling)."""
    from repro.obs.logs import configure_logging
    from repro.service.server import serve

    configure_logging(log_level, json_format=log_json)
    serve(config)


def serve_sharded(config: Any, log_level: str = "info", log_json: bool = False) -> None:
    """Fork ``config.shard_count`` shard processes and supervise them.

    Blocks until every shard exits; Ctrl-C reaches the whole process group,
    and any shard still alive after the supervisor unblocks is terminated.
    Spawn (not fork) start method: shards create their own event loops and
    thread pools, and a forked child of a threaded parent can inherit a
    held lock.
    """
    if config.shard_count <= 1:
        from repro.service.server import serve

        serve(config)
        return
    if config.port == 0:
        raise ConfigurationError(
            "sharded serving needs a fixed --port: the shard port layout is "
            "base+1+index, which an ephemeral port 0 cannot anchor"
        )
    # SIGTERM's default disposition would kill the supervisor without
    # running the finally block below, orphaning every shard.  Translate
    # it into KeyboardInterrupt so terminate-the-children always runs.
    def _on_sigterm(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _on_sigterm)
    context = multiprocessing.get_context("spawn")
    processes = []
    for index in range(config.shard_count):
        process = context.Process(
            target=_shard_main,
            args=(replace(config, shard_index=index), log_level, log_json),
            name=f"repro-shard-{index}",
        )
        process.start()
        processes.append(process)
    log.info(
        "supervising %d shards: public port %d, shard ports %s",
        config.shard_count,
        config.port,
        shard_ports(config.port, config.shard_count),
    )
    try:
        for process in processes:
            process.join()
    except KeyboardInterrupt:
        log.info("shard supervisor interrupted; stopping shards")
    finally:
        # terminate() is SIGTERM: each shard runs its graceful drain
        # (bounded by drain_timeout) and flushes its journal, so give them
        # that long before escalating to SIGKILL.
        for process in processes:
            if process.is_alive():
                process.terminate()
        grace = float(getattr(config, "drain_timeout", 10.0)) + 5.0
        for process in processes:
            process.join(timeout=grace)
        for process in processes:
            if process.is_alive():  # pragma: no cover - drain wedged
                process.kill()
                process.join(timeout=5.0)

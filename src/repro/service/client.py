"""The client SDK: a small blocking client over the service's wire schema.

Pure standard library (``urllib``); mirrors the ``/v1`` endpoints.  Every
request carries an ``X-Repro-Trace-Id`` correlation header (minted here when
the caller has none); submissions also embed it in the wire envelope, and the
server echoes it back (see :attr:`SubmitReceipt.trace_id`).
Connection configuration (base URL, timeout, tenant identity, auth token)
lives on the client; per-call knobs are keyword-only on :meth:`submit`:

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8077", tenant="alpha", token="s3cret")
    receipt = client.submit(figure="fig7", instructions=8_000, priority="interactive")
    status = client.wait(receipt.job_id)          # poll until completed
    print(status["progress"], status["result"])
    client.stats()["tenants"]["alpha"]            # usage/latency accounting

The old positional ``submit(figure, cases, instructions, seed, full,
engine)`` signature still works through a deprecation shim (it warns; new
code should pass keywords).

Errors surface as :class:`~repro.common.errors.ServiceError`.  Admission
rejections raise :class:`~repro.common.errors.ServiceOverloadedError`
carrying the structured fields from the error body -- ``code``
(``overloaded`` vs ``tenant_quota_exceeded``), ``tenant`` and
``retry_after`` -- so callers back off without parsing message strings.
``python -m repro submit`` is a thin wrapper over this class.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import warnings
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.common.errors import (
    ErrorCode,
    JobNotFoundError,
    ServiceError,
    ServiceOverloadedError,
)
from repro.common.serialize import open_envelope, read_envelope, wire_envelope
from repro.exp.request import REQUEST_SCHEMA_VERSION, JobRequest
from repro.exp.runner import SimJob
from repro.obs.tracing import TRACE_ID_HEADER, current_trace_id, new_trace_id

#: A direct (proxy-free) opener: the service is always an explicit HTTP peer,
#: and honouring http_proxy/https_proxy env vars would route even loopback
#: requests through a corporate proxy that cannot reach the caller's 127.0.0.1.
_OPENER = urllib.request.build_opener(urllib.request.ProxyHandler({}))

#: The old positional order of ``submit`` (the back-compat shim's contract).
_SUBMIT_POSITIONAL = ("figure", "cases", "instructions", "seed", "full", "engine")

#: Status polling backs off exponentially with **full jitter** -- poll ``n``
#: sleeps ``uniform(0, min(cap, interval * 2**n))`` -- so a fleet of waiting
#: clients decorrelates instead of hammering the server in lockstep.
POLL_INTERVAL_CAP = 1.0

#: ``wait=True`` submissions that hit a 429 resubmit with the same jittered
#: exponential schedule (capped here), except that a ``Retry-After`` hint
#: from the server takes precedence over the computed backoff.
RESUBMIT_BACKOFF_BASE = 0.25
RESUBMIT_BACKOFF_CAP = 10.0


@dataclass(frozen=True)
class SubmitReceipt:
    """What ``POST /v1/jobs`` answers: the job handle and how it was admitted."""

    job_id: str
    request_key: str
    status: str
    coalesced: bool
    #: The tenant/lane the server resolved the submission to.
    tenant: Optional[str] = None
    priority: Optional[str] = None
    #: Migration note when the server deprecates the submission's schema.
    deprecation: Optional[str] = None
    #: The correlation ID this submission travelled under (minted client-side,
    #: echoed by the server in the envelope and ``X-Repro-Trace-Id`` header).
    trace_id: Optional[str] = None


class ServiceClient:
    """Blocking HTTP client for one ``repro serve`` instance.

    ``tenant`` and ``token`` are connection-level identity: every submission
    is labelled with the client's tenant (overridable per call) and carries
    ``Authorization: Bearer <token>`` when a token is configured.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8077",
        timeout: float = 60.0,
        *,
        tenant: Optional[str] = None,
        token: Optional[str] = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.tenant = tenant
        self.token = token

    # -- transport -----------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        payload: Optional[Dict[str, Any]] = None,
        trace_id: Optional[str] = None,
    ) -> Tuple[int, Any]:
        """Issue one request; returns ``(status, parsed JSON body)``.

        Every request carries an ``X-Repro-Trace-Id``: the caller's explicit
        ``trace_id``, else the ambient one (:func:`current_trace_id`), else a
        freshly minted ID -- so even ad-hoc GETs are correlatable in the
        server's logs.  HTTP error statuses are returned (not raised) so
        callers can map them to domain errors; transport failures raise
        :class:`ServiceError`.
        """
        data = None
        if trace_id is None:
            trace_id = current_trace_id() or new_trace_id()
        headers = {"Accept": "application/json", TRACE_ID_HEADER: trace_id}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            with _OPENER.open(request, timeout=self.timeout) as response:
                return response.status, json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            body = error.read()
            try:
                parsed = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                parsed = wire_envelope(
                    "error",
                    {"status": error.code, "message": body.decode("utf-8", "replace")},
                )
            return error.code, parsed
        except urllib.error.URLError as error:
            raise ServiceError(f"cannot reach {self.base_url}: {error.reason}") from None
        except (OSError, http.client.HTTPException, json.JSONDecodeError) as error:
            # Read stalls (socket.timeout), resets mid-body and truncated or
            # non-JSON responses must surface as ServiceError too, not as raw
            # tracebacks the CLI cannot map to an exit code.
            raise ServiceError(
                f"transport failure talking to {self.base_url}: "
                f"{type(error).__name__}: {error}"
            ) from None

    @staticmethod
    def _error_body(data: Any) -> Dict[str, Any]:
        """The structured error payload (``{}`` when malformed)."""
        try:
            payload = open_envelope(data, "error")
            return payload if isinstance(payload, dict) else {"message": str(payload)}
        except Exception:  # noqa: BLE001 -- any malformed error body
            return {"message": str(data)}

    @classmethod
    def _error_message(cls, data: Any) -> str:
        body = cls._error_body(data)
        return str(body.get("message", body))

    @classmethod
    def _overloaded_error(cls, data: Any) -> ServiceOverloadedError:
        """Map a 429 body to :class:`ServiceOverloadedError` with its fields."""
        body = cls._error_body(data)
        try:
            code = ErrorCode(body.get("code", ErrorCode.OVERLOADED.value))
        except ValueError:
            code = ErrorCode.OVERLOADED
        return ServiceOverloadedError(
            str(body.get("message", "service overloaded")),
            code=code,
            tenant=body.get("tenant"),
            retry_after=body.get("retry_after"),
        )

    @staticmethod
    def _resubmit_delay(retry_after: Optional[float], attempt: int) -> float:
        """How long a ``wait=True`` 429 resubmission should back off.

        The server's ``Retry-After`` hint is honoured when present (with a
        little added jitter so simultaneously rejected clients do not
        resubmit in lockstep); otherwise capped exponential with full jitter.
        """
        if retry_after is not None and retry_after > 0:
            return float(retry_after) * random.uniform(1.0, 1.25)
        return random.uniform(
            0.0, min(RESUBMIT_BACKOFF_CAP, RESUBMIT_BACKOFF_BASE * 2**attempt)
        )

    # -- endpoints -----------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """``GET /v1/healthz``: liveness, version, queue and job statistics."""
        status, data = self._request("GET", "/v1/healthz")
        if status != 200:
            raise ServiceError(f"healthz failed ({status}): {self._error_message(data)}")
        return open_envelope(data, "health")

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats``: per-tenant usage and latency accounting."""
        status, data = self._request("GET", "/v1/stats")
        if status != 200:
            raise ServiceError(f"stats failed ({status}): {self._error_message(data)}")
        return open_envelope(data, "stats")

    def metrics(self, *, scope: Optional[str] = None) -> Dict[str, Any]:
        """``GET /v1/metrics?format=json``: the server's metrics document.

        ``scope="local"`` asks a shard for its own document only, skipping
        the cross-shard merge (and hence any dependence on peer health).
        """
        suffix = f"&scope={scope}" if scope else ""
        status, data = self._request("GET", f"/v1/metrics?format=json{suffix}")
        if status != 200:
            raise ServiceError(f"metrics failed ({status}): {self._error_message(data)}")
        return open_envelope(data, "metrics")

    def submit(self, *args: Any, **kwargs: Any) -> Any:
        """``POST /v1/jobs``: submit a figure campaign or an explicit batch.

        All parameters are keyword-only: ``figure``, ``cases``,
        ``instructions``, ``seed``, ``full``, ``engine``, ``policy`` (cache
        replacement policy for figure campaigns), plus the admission knobs ``priority`` (``interactive``/``batch``) and ``tenant`` (which
        overrides the client-level tenant for this call).  Returns a
        :class:`SubmitReceipt`; with ``wait=True`` it polls until the job
        finishes (``timeout`` seconds) and returns the completed status
        document instead.  Positional arguments are accepted for backward
        compatibility with the pre-v2 signature and emit a
        :class:`DeprecationWarning`.
        """
        if args:
            warnings.warn(
                "positional arguments to ServiceClient.submit() are deprecated; "
                "pass figure=, cases=, instructions=, seed=, full=, engine= as "
                "keywords",
                DeprecationWarning,
                stacklevel=2,
            )
            if len(args) > len(_SUBMIT_POSITIONAL):
                raise TypeError(
                    f"submit() takes at most {len(_SUBMIT_POSITIONAL)} positional "
                    f"arguments ({len(args)} given)"
                )
            for name, value in zip(_SUBMIT_POSITIONAL, args):
                if name in kwargs:
                    raise TypeError(f"submit() got multiple values for {name!r}")
                kwargs[name] = value
        return self._submit(**kwargs)

    def _submit(
        self,
        *,
        figure: Optional[str] = None,
        cases: Optional[Iterable[SimJob]] = None,
        instructions: Optional[int] = None,
        seed: Optional[int] = None,
        full: bool = False,
        engine: Optional[str] = None,
        policy: Optional[str] = None,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
        wait: bool = False,
        timeout: float = 600.0,
    ) -> Any:
        tenant = tenant if tenant is not None else self.tenant
        # One trace ID covers the whole submission: minted here, sent in both
        # the envelope and the header, echoed back in the receipt.
        trace_id = current_trace_id() or new_trace_id()
        request = JobRequest(
            figure=figure,
            cases=tuple(cases or ()),
            instructions=instructions,
            seed=seed,
            full=full,
            engine=engine,
            policy=policy,
            tenant=tenant,
            priority=priority,
        )
        envelope_payload = wire_envelope(
            "job_request",
            request.to_dict(),
            tenant=tenant,
            priority=priority,
            schema_version=REQUEST_SCHEMA_VERSION,
            trace_id=trace_id,
        )
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            status, data = self._request(
                "POST", "/v1/jobs", envelope_payload, trace_id=trace_id
            )
            if status != 429:
                break
            error = self._overloaded_error(data)
            if not wait:
                raise error
            # wait=True means the caller wants the job's outcome, not the
            # admission verdict: a 429 is resubmitted (honouring the
            # server's Retry-After) until the overall timeout budget runs
            # out, at which point the last rejection surfaces.
            delay = self._resubmit_delay(error.retry_after, attempt)
            if time.monotonic() + delay >= deadline:
                raise error
            attempt += 1
            time.sleep(delay)
        if status not in (200, 202):
            raise ServiceError(f"submission rejected ({status}): {self._error_message(data)}")
        envelope = read_envelope(data, "job_accepted")
        payload = envelope.payload
        receipt = SubmitReceipt(
            job_id=payload["job_id"],
            request_key=payload["request_key"],
            status=payload["status"],
            coalesced=bool(payload["coalesced"]),
            tenant=payload.get("tenant"),
            priority=payload.get("priority"),
            deprecation=payload.get("deprecation"),
            trace_id=envelope.trace_id if envelope.trace_id is not None else trace_id,
        )
        if wait:
            # The poll loop gets whatever budget the resubmissions left.
            return self.wait(
                receipt.job_id,
                timeout=max(0.0, deadline - time.monotonic()),
                request_key=receipt.request_key,
            )
        return receipt

    def status(self, job_id: str, include_result: bool = True) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}``: the job's status document.

        Raises :class:`JobNotFoundError` (a :class:`ServiceError` subclass)
        when the server no longer knows the id -- which, for a completed job,
        can simply mean it aged out of the bounded history.
        """
        suffix = "" if include_result else "?result=0"
        status, data = self._request("GET", f"/v1/jobs/{job_id}{suffix}")
        if status == 404:
            raise JobNotFoundError(f"unknown job {job_id!r}")
        if status != 200:
            raise ServiceError(f"status failed ({status}): {self._error_message(data)}")
        return open_envelope(data, "job_status")

    def wait(
        self,
        job_id: str,
        timeout: float = 600.0,
        poll_interval: float = 0.05,
        *,
        request_key: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Poll until the job completes; raises on failure or timeout.

        The poll interval grows exponentially from ``poll_interval`` with
        **full jitter** (each sleep is uniform between zero and the capped
        exponential envelope, see :data:`POLL_INTERVAL_CAP`): short jobs
        still return promptly, long waits do not hammer the server -- every
        poll is a fresh connection on a ``Connection: close`` protocol --
        and a fleet of pollers started together spreads out instead of
        arriving in synchronised waves.

        ``request_key`` (the :attr:`SubmitReceipt.request_key` content
        address) arms the trim-survival fallback: under backlog a job can
        complete and age out of the server's bounded history *between two
        polls*, so a 404 on the job id is retried as
        ``GET /v1/results/{request_key}`` -- if the payload is there the job
        succeeded, and a synthesized completed view is returned (marked
        ``"trimmed": True``) instead of failing work that actually finished.
        """
        deadline = time.monotonic() + timeout
        attempt = 0
        while True:
            try:
                view = self.status(job_id)
            except JobNotFoundError:
                if request_key is None:
                    raise
                payload = self.result(request_key)
                if payload is None:
                    raise
                return {
                    "job_id": job_id,
                    "status": "completed",
                    "request_key": request_key,
                    "result": payload,
                    "trimmed": True,
                    "progress": {"executed_jobs": 0, "cache_hits": 0},
                }
            if view["status"] == "completed":
                return view
            if view["status"] == "failed":
                raise ServiceError(f"job {job_id} failed: {view.get('error')}")
            if time.monotonic() >= deadline:
                raise ServiceError(f"timed out after {timeout:.0f}s waiting for {job_id}")
            envelope = min(POLL_INTERVAL_CAP, poll_interval * 2**attempt)
            attempt += 1
            remaining = max(0.0, deadline - time.monotonic())
            time.sleep(min(random.uniform(0.0, envelope), remaining))

    def result(self, key: str) -> Optional[Dict[str, Any]]:
        """``GET /v1/results/{key}``: one cached simulation, or ``None``."""
        status, data = self._request("GET", f"/v1/results/{key}")
        if status == 404:
            return None
        if status != 200:
            raise ServiceError(f"result lookup failed ({status}): {self._error_message(data)}")
        return open_envelope(data, "cached_result")["result"]

    def run(
        self,
        figure: Optional[str] = None,
        cases: Optional[Iterable[SimJob]] = None,
        instructions: Optional[int] = None,
        seed: Optional[int] = None,
        full: bool = False,
        engine: Optional[str] = None,
        timeout: float = 600.0,
        *,
        policy: Optional[str] = None,
        priority: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit and wait: returns the completed status document."""
        receipt = self._submit(
            figure=figure,
            cases=cases,
            instructions=instructions,
            seed=seed,
            full=full,
            engine=engine,
            policy=policy,
            priority=priority,
            tenant=tenant,
        )
        return self.wait(
            receipt.job_id, timeout=timeout, request_key=receipt.request_key
        )
